// Package core is the library's top layer: the reusable-workflow abstraction
// of Section III. A workflow is a graph of components; every component
// carries a gauge assessment (its position on the six reusability axes),
// typed data ports, and optionally a Skel customization model. On top of
// that metadata the automation planner decides, edge by edge and component
// by component, which parts of a reuse event are automatable right now and
// which still need a human — making the reusability continuum explicit and
// selectable.
package core

import (
	"fmt"
	"sort"

	"fairflow/internal/gauge"
	"fairflow/internal/skel"
)

// PortDirection distinguishes inputs from outputs.
type PortDirection string

// Port directions.
const (
	In  PortDirection = "in"
	Out PortDirection = "out"
)

// Port is a typed data endpoint of a component. FormatID references a
// format in a schema registry ("name@vN"); AccessTerms and SemanticTerms
// carry gauge-ontology terms describing how the data is reached and
// consumed ("posix-file", "element-wise", "first-precious", ...).
type Port struct {
	Name          string        `json:"name"`
	Direction     PortDirection `json:"direction"`
	FormatID      string        `json:"format_id,omitempty"`
	AccessTerms   []string      `json:"access_terms,omitempty"`
	SemanticTerms []string      `json:"semantic_terms,omitempty"`
}

// GranularityKind mirrors the granularity gauge's component-scale tier.
type GranularityKind string

// Component scales.
const (
	CodeFragment    GranularityKind = "code-fragment"
	Executable      GranularityKind = "executable"
	BundledWorkflow GranularityKind = "bundled-workflow"
	InternalService GranularityKind = "internal-service"
)

// Component is one reusable workflow element.
type Component struct {
	Name string          `json:"name"`
	Kind GranularityKind `json:"kind"`
	// Assessment is the component's six-gauge position with evidence.
	Assessment *gauge.Assessment `json:"assessment"`
	// Ports declare the component's data interface.
	Ports []Port `json:"ports"`
	// Customization, when present, is the machine-actionable model that
	// regenerates the component's concrete expression (customizability
	// tier 2).
	Customization *skel.ModelSpec `json:"customization,omitempty"`
}

// Validate checks structural consistency, including that the recorded
// gauge tiers do not overstate the attached metadata (a component claiming
// full-schema ports must actually name formats on every port).
func (c *Component) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("core: component needs a name")
	}
	switch c.Kind {
	case CodeFragment, Executable, BundledWorkflow, InternalService, "":
	default:
		return fmt.Errorf("core: component %q has unknown kind %q", c.Name, c.Kind)
	}
	if c.Assessment == nil {
		return fmt.Errorf("core: component %q has no gauge assessment", c.Name)
	}
	if err := c.Assessment.Validate(); err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, p := range c.Ports {
		if p.Name == "" {
			return fmt.Errorf("core: component %q has unnamed port", c.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("core: component %q duplicates port %q", c.Name, p.Name)
		}
		seen[p.Name] = true
		if p.Direction != In && p.Direction != Out {
			return fmt.Errorf("core: port %s.%s has bad direction %q", c.Name, p.Name, p.Direction)
		}
	}
	// Claiming schema tier ≥1 requires formats on all ports.
	if c.Assessment.Vector.Get(gauge.DataSchema) >= 1 {
		for _, p := range c.Ports {
			if p.FormatID == "" {
				return fmt.Errorf("core: component %q claims schema tier ≥1 but port %q names no format", c.Name, p.Name)
			}
		}
	}
	// Claiming customizability tier ≥2 requires a generation model.
	if c.Assessment.Vector.Get(gauge.Customizability) >= 2 && c.Customization == nil {
		return fmt.Errorf("core: component %q claims a machine-actionable model but has none", c.Name)
	}
	return nil
}

// Port returns the named port.
func (c *Component) Port(name string) (Port, bool) {
	for _, p := range c.Ports {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

// Edge connects an output port to an input port.
type Edge struct {
	FromComponent string `json:"from_component"`
	FromPort      string `json:"from_port"`
	ToComponent   string `json:"to_component"`
	ToPort        string `json:"to_port"`
}

func (e Edge) String() string {
	return fmt.Sprintf("%s.%s → %s.%s", e.FromComponent, e.FromPort, e.ToComponent, e.ToPort)
}

// Workflow is a directed graph of components.
type Workflow struct {
	Name       string       `json:"name"`
	Components []*Component `json:"components"`
	Edges      []Edge       `json:"edges"`
}

// Component returns the named component.
func (w *Workflow) Component(name string) (*Component, bool) {
	for _, c := range w.Components {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}

// Validate checks the graph: valid components, edges referencing real
// out→in port pairs, unique component names, and acyclicity.
func (w *Workflow) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("core: workflow needs a name")
	}
	if len(w.Components) == 0 {
		return fmt.Errorf("core: workflow %q has no components", w.Name)
	}
	names := map[string]bool{}
	for _, c := range w.Components {
		if err := c.Validate(); err != nil {
			return err
		}
		if names[c.Name] {
			return fmt.Errorf("core: workflow %q duplicates component %q", w.Name, c.Name)
		}
		names[c.Name] = true
	}
	for _, e := range w.Edges {
		from, ok := w.Component(e.FromComponent)
		if !ok {
			return fmt.Errorf("core: edge %s references unknown component %q", e, e.FromComponent)
		}
		to, ok := w.Component(e.ToComponent)
		if !ok {
			return fmt.Errorf("core: edge %s references unknown component %q", e, e.ToComponent)
		}
		fp, ok := from.Port(e.FromPort)
		if !ok || fp.Direction != Out {
			return fmt.Errorf("core: edge %s needs an output port on %q", e, e.FromComponent)
		}
		tp, ok := to.Port(e.ToPort)
		if !ok || tp.Direction != In {
			return fmt.Errorf("core: edge %s needs an input port on %q", e, e.ToComponent)
		}
	}
	if _, err := w.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns component names in a topological order, or an error for
// cyclic graphs.
func (w *Workflow) TopoOrder() ([]string, error) {
	indeg := map[string]int{}
	adj := map[string][]string{}
	for _, c := range w.Components {
		indeg[c.Name] = 0
	}
	for _, e := range w.Edges {
		adj[e.FromComponent] = append(adj[e.FromComponent], e.ToComponent)
		indeg[e.ToComponent]++
	}
	var ready []string
	for name, d := range indeg {
		if d == 0 {
			ready = append(ready, name)
		}
	}
	sort.Strings(ready)
	var order []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		next := adj[n]
		sort.Strings(next)
		for _, m := range next {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
			}
		}
		sort.Strings(ready)
	}
	if len(order) != len(w.Components) {
		return nil, fmt.Errorf("core: workflow %q contains a cycle", w.Name)
	}
	return order, nil
}

// Debt sums the technical-debt ledgers of all components: the human minutes
// one reuse event of the whole workflow costs at current gauge tiers.
func (w *Workflow) Debt() (interventions int, minutes float64) {
	for _, c := range w.Components {
		led := gauge.DebtLedger(c.Name, c.Assessment.Vector)
		interventions += led.InterventionCount()
		minutes += led.MinutesPerReuse()
	}
	return interventions, minutes
}

// GaugeFloor returns the workflow's weakest-link gauge vector: the minimum
// tier per axis across all components. A workflow is only as automatable as
// its least-described component, so capability checks against the floor are
// the workflow-level reading of the gauges.
func (w *Workflow) GaugeFloor() gauge.Vector {
	floor := gauge.NewVector()
	if len(w.Components) == 0 {
		return floor
	}
	for _, a := range gauge.Axes() {
		min := w.Components[0].Assessment.Vector.Get(a)
		for _, c := range w.Components[1:] {
			if t := c.Assessment.Vector.Get(a); t < min {
				min = t
			}
		}
		floor[a] = min
	}
	return floor
}
