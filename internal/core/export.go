package core

import (
	"encoding/json"
	"fmt"
	"io"

	"fairflow/internal/gauge"
	"fairflow/internal/provenance"
)

// ResearchObject is the distributable reuse bundle the provenance gauge's
// exportability tier culminates in: the workflow document, its components'
// gauge assessments, and the provenance filtered by an export policy. "Not
// all provenance that is useful to the original author is appropriate to
// include in a distributable, reusable research object" — the policy decides.
type ResearchObject struct {
	Workflow *Workflow `json:"workflow"`
	// Provenance is the filtered execution history, one record set per
	// exported campaign.
	Provenance []provenance.ResearchObject `json:"provenance,omitempty"`
	// DebtSummary records the reuse cost a recipient should expect.
	DebtSummary DebtSummary `json:"debt_summary"`
}

// DebtSummary is the recipient-facing reuse cost estimate.
type DebtSummary struct {
	Interventions int     `json:"interventions_per_reuse"`
	Minutes       float64 `json:"minutes_per_reuse"`
	// UnlockedCapabilities lists automation every component supports
	// (intersection across components).
	UnlockedCapabilities []gauge.Capability `json:"unlocked_capabilities"`
}

// ExportResearchObject bundles the workflow with filtered provenance for
// the given campaigns. Components must pass validation; the export fails
// rather than ship an inconsistent object.
func ExportResearchObject(w *Workflow, store *provenance.Store, campaigns []string, policy provenance.ExportPolicy) (*ResearchObject, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	ro := &ResearchObject{Workflow: w}
	for _, campaign := range campaigns {
		filtered, err := provenance.Export(store, campaign, policy)
		if err != nil {
			return nil, fmt.Errorf("core: exporting campaign %q: %w", campaign, err)
		}
		ro.Provenance = append(ro.Provenance, filtered)
	}
	iv, minutes := w.Debt()
	ro.DebtSummary = DebtSummary{Interventions: iv, Minutes: minutes}
	// Capabilities every component unlocks — what a recipient can rely on.
	for _, c := range gauge.Capabilities() {
		all := true
		for _, comp := range w.Components {
			if !gauge.Unlocked(comp.Assessment.Vector, c) {
				all = false
				break
			}
		}
		if all {
			ro.DebtSummary.UnlockedCapabilities = append(ro.DebtSummary.UnlockedCapabilities, c)
		}
	}
	return ro, nil
}

// WriteJSON serialises the research object.
func (ro *ResearchObject) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ro)
}

// LoadResearchObject parses and validates a research object.
func LoadResearchObject(r io.Reader) (*ResearchObject, error) {
	var ro ResearchObject
	if err := json.NewDecoder(r).Decode(&ro); err != nil {
		return nil, fmt.Errorf("core: parsing research object: %w", err)
	}
	if ro.Workflow == nil {
		return nil, fmt.Errorf("core: research object has no workflow")
	}
	if err := ro.Workflow.Validate(); err != nil {
		return nil, err
	}
	return &ro, nil
}
