package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"fairflow/internal/gauge"
	"fairflow/internal/provenance"
)

func seedProv(t *testing.T) *provenance.Store {
	t.Helper()
	store := provenance.NewStore()
	start := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	ok := provenance.Record{
		ID: "r1", Component: "producer", CampaignID: "camp",
		Status: provenance.StatusSucceeded, Start: start, End: start.Add(time.Minute),
		Annotations: []provenance.Annotation{
			{Key: "note", Value: "fine", Sensitivity: provenance.Public},
			{Key: "gpfs_path", Value: "/gpfs/x", Sensitivity: provenance.Internal},
		},
	}
	bad := provenance.Record{
		ID: "r2", Component: "producer", CampaignID: "camp",
		Status: provenance.StatusFailed, Start: start, End: start.Add(time.Minute),
	}
	for _, r := range []provenance.Record{ok, bad} {
		if err := store.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

func TestExportResearchObject(t *testing.T) {
	w := twoStepWorkflow(highTiers(), "bed@v1", "bed@v1")
	store := seedProv(t)
	ro, err := ExportResearchObject(w, store, []string{"camp"}, provenance.DefaultExportPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(ro.Provenance) != 1 || len(ro.Provenance[0].Records) != 1 {
		t.Fatalf("provenance: %+v", ro.Provenance)
	}
	rec := ro.Provenance[0].Records[0]
	if len(rec.Annotations) != 1 || rec.Annotations[0].Key != "note" {
		t.Fatalf("policy not applied: %+v", rec.Annotations)
	}
	if ro.DebtSummary.Minutes <= 0 || ro.DebtSummary.Interventions <= 0 {
		t.Fatalf("debt summary: %+v", ro.DebtSummary)
	}
}

func TestExportCapabilitiesAreIntersection(t *testing.T) {
	w := twoStepWorkflow(highTiers(), "bed@v1", "bed@v1")
	store := seedProv(t)
	// Producer unlocks auto-convert (access 2 + schema 3); consumer does
	// not — so the intersection must exclude it.
	ro, err := ExportResearchObject(w, store, []string{"camp"}, provenance.DefaultExportPolicy())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ro.DebtSummary.UnlockedCapabilities {
		if c == gauge.CapAutoConvert {
			t.Fatal("intersection leaked a capability only one component has")
		}
	}
	// Raise the consumer too; now it must appear.
	cons, _ := w.Component("consumer")
	cons.Assessment.Vector.MustSet(gauge.DataAccess, 2).MustSet(gauge.DataSchema, 3)
	ro2, err := ExportResearchObject(w, store, []string{"camp"}, provenance.DefaultExportPolicy())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range ro2.DebtSummary.UnlockedCapabilities {
		if c == gauge.CapAutoConvert {
			found = true
		}
	}
	if !found {
		t.Fatal("shared capability missing from intersection")
	}
}

func TestExportUnknownCampaignFails(t *testing.T) {
	w := twoStepWorkflow(highTiers(), "bed@v1", "bed@v1")
	store := seedProv(t)
	if _, err := ExportResearchObject(w, store, []string{"ghost"}, provenance.DefaultExportPolicy()); err == nil {
		t.Fatal("unknown campaign exported")
	}
}

func TestResearchObjectJSONRoundTrip(t *testing.T) {
	w := twoStepWorkflow(highTiers(), "bed@v1", "bed@v1")
	store := seedProv(t)
	ro, err := ExportResearchObject(w, store, []string{"camp"}, provenance.DefaultExportPolicy())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ro.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadResearchObject(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Workflow.Name != w.Name || len(back.Provenance) != 1 {
		t.Fatalf("round trip: %+v", back)
	}
	if _, err := LoadResearchObject(strings.NewReader("{}")); err == nil {
		t.Fatal("workflow-less object accepted")
	}
}
