package core

import (
	"bytes"
	"strings"
	"testing"

	"fairflow/internal/gauge"
)

func TestWorkflowJSONRoundTrip(t *testing.T) {
	w := twoStepWorkflow(highTiers(), "bed@v1", "gff3@v1")
	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadWorkflow(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != w.Name || len(back.Components) != 2 || len(back.Edges) != 1 {
		t.Fatalf("round trip: %+v", back)
	}
	prod, ok := back.Component("producer")
	if !ok {
		t.Fatal("producer lost")
	}
	if prod.Assessment.Vector.Get(gauge.DataSchema) != 3 {
		t.Fatalf("gauge vector lost: %s", prod.Assessment.Vector)
	}
	if prod.Ports[0].FormatID != "bed@v1" {
		t.Fatalf("port format lost: %+v", prod.Ports[0])
	}
}

func TestLoadWorkflowValidates(t *testing.T) {
	if _, err := LoadWorkflow(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	// Structurally valid JSON, semantically invalid workflow (no
	// components).
	if _, err := LoadWorkflow(strings.NewReader(`{"name":"x"}`)); err == nil {
		t.Fatal("invalid workflow accepted")
	}
}

func TestReferencedFormats(t *testing.T) {
	w := twoStepWorkflow(highTiers(), "bed@v1", "gff3@v1")
	got := w.ReferencedFormats()
	if len(got) != 2 || got[0] != "bed@v1" || got[1] != "gff3@v1" {
		t.Fatalf("formats: %v", got)
	}
}
