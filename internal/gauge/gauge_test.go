package gauge

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestAxesCountAndClassification(t *testing.T) {
	axes := Axes()
	if len(axes) != 6 {
		t.Fatalf("expected 6 gauge axes, got %d", len(axes))
	}
	var data, sw int
	for _, a := range axes {
		if !a.Valid() {
			t.Fatalf("axis %q invalid", a)
		}
		if a.IsData() {
			data++
		}
		if a.IsSoftware() {
			sw++
		}
		if a.IsData() && a.IsSoftware() {
			t.Fatalf("axis %q both data and software", a)
		}
	}
	if data != 3 || sw != 3 {
		t.Fatalf("expected 3 data + 3 software gauges, got %d + %d", data, sw)
	}
}

func TestLevelsAreContiguousFromZero(t *testing.T) {
	for _, a := range Axes() {
		levels := Levels(a)
		if len(levels) < 2 {
			t.Fatalf("axis %q has too few tiers", a)
		}
		for i, ti := range levels {
			if ti.Tier != Tier(i) {
				t.Fatalf("axis %q tier %d has rank %d", a, i, ti.Tier)
			}
			if ti.Name == "" || ti.Description == "" {
				t.Fatalf("axis %q tier %d missing name/description", a, i)
			}
		}
	}
}

func TestInfoAndTierByNameRoundTrip(t *testing.T) {
	for _, a := range Axes() {
		for _, ti := range Levels(a) {
			got, err := Info(a, ti.Tier)
			if err != nil || got.Name != ti.Name {
				t.Fatalf("Info(%q,%d) = %+v, %v", a, ti.Tier, got, err)
			}
			tier, err := TierByName(a, ti.Name)
			if err != nil || tier != ti.Tier {
				t.Fatalf("TierByName(%q,%q) = %d, %v", a, ti.Name, tier, err)
			}
		}
	}
	if _, err := Info(DataAccess, 99); err == nil {
		t.Fatal("expected error for unknown tier")
	}
	if _, err := TierByName(DataAccess, "nope"); err == nil {
		t.Fatal("expected error for unknown tier name")
	}
}

func TestTierRequirementsReferenceValidTiers(t *testing.T) {
	for _, a := range Axes() {
		for _, ti := range Levels(a) {
			for dep, min := range ti.Requires {
				if !dep.Valid() {
					t.Fatalf("%s/%s requires invalid axis %q", a, ti.Name, dep)
				}
				if dep == a {
					t.Fatalf("%s/%s requires its own axis", a, ti.Name)
				}
				if _, err := Info(dep, min); err != nil {
					t.Fatalf("%s/%s requires nonexistent %s tier %d", a, ti.Name, dep, min)
				}
			}
		}
	}
}

func TestRegisterTierExtension(t *testing.T) {
	max := MaxTier(DataSchema)
	err := RegisterTier(TierInfo{Axis: DataSchema, Tier: max + 1, Name: "test-ext",
		Description: "extension tier for tests"})
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	defer func() { tierTable[DataSchema] = tierTable[DataSchema][:len(tierTable[DataSchema])-1] }()
	if MaxTier(DataSchema) != max+1 {
		t.Fatal("extension did not raise max tier")
	}
	if err := RegisterTier(TierInfo{Axis: DataSchema, Tier: max + 5, Name: "gap", Description: "d"}); err == nil {
		t.Fatal("non-contiguous registration accepted")
	}
	if err := RegisterTier(TierInfo{Axis: DataSchema, Tier: max + 2, Name: "test-ext", Description: "d"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := RegisterTier(TierInfo{Axis: "bogus", Tier: 1, Name: "x", Description: "d"}); err == nil {
		t.Fatal("invalid axis accepted")
	}
}

func TestTermIndexCoversAllTerms(t *testing.T) {
	idx := TermIndex()
	if len(idx) == 0 {
		t.Fatal("empty term index")
	}
	for _, a := range Axes() {
		for _, ti := range Levels(a) {
			for _, term := range ti.Terms {
				found := false
				for _, hit := range idx[term] {
					if hit.Axis == a && hit.Tier == ti.Tier {
						found = true
					}
				}
				if !found {
					t.Fatalf("term %q from %s/%d missing in index", term, a, ti.Tier)
				}
			}
		}
	}
}

func TestVectorSetValidation(t *testing.T) {
	v := NewVector()
	if err := v.Set(DataAccess, 2); err != nil {
		t.Fatal(err)
	}
	if v.Get(DataAccess) != 2 {
		t.Fatal("set did not stick")
	}
	if err := v.Set(DataAccess, 99); err == nil {
		t.Fatal("accepted out-of-range tier")
	}
	if err := v.Set("bogus", 1); err == nil {
		t.Fatal("accepted invalid axis")
	}
}

func TestVectorValidateCrossAxisDependency(t *testing.T) {
	v := NewVector()
	// query-model (access tier 3) requires schema ≥ 1.
	v.MustSet(DataAccess, 3)
	if err := v.Validate(); err == nil {
		t.Fatal("expected dependency violation for access=3 schema=0")
	}
	v.MustSet(DataSchema, 1)
	if err := v.Validate(); err != nil {
		t.Fatalf("valid vector rejected: %v", err)
	}
}

func TestVectorDominatesPartialOrder(t *testing.T) {
	lo := NewVector()
	hi := NewVector().MustSet(DataAccess, 1).MustSet(Provenance, 1)
	if !hi.Dominates(lo) || lo.Dominates(hi) {
		t.Fatal("dominance broken")
	}
	a := NewVector().MustSet(DataAccess, 2)
	b := NewVector().MustSet(Provenance, 2)
	if a.Dominates(b) || b.Dominates(a) {
		t.Fatal("incomparable vectors reported comparable")
	}
	if !a.Dominates(a) {
		t.Fatal("dominance not reflexive")
	}
}

func TestVectorMeetsAndGaps(t *testing.T) {
	v := NewVector().MustSet(DataSchema, 2)
	req := Vector{DataSchema: 3, Granularity: 1}
	if v.Meets(req) {
		t.Fatal("unmet requirement reported met")
	}
	gaps := v.Gaps(req)
	if gaps[DataSchema] != 1 || gaps[Granularity] != 1 || len(gaps) != 2 {
		t.Fatalf("bad gaps: %v", gaps)
	}
	v.MustSet(DataSchema, 3).MustSet(Granularity, 2)
	if !v.Meets(req) || len(v.Gaps(req)) != 0 {
		t.Fatal("met requirement reported unmet")
	}
}

func TestVectorRaiseNeverLowers(t *testing.T) {
	v := NewVector().MustSet(DataAccess, 2)
	if err := v.Raise(DataAccess, 1); err != nil {
		t.Fatal(err)
	}
	if v.Get(DataAccess) != 2 {
		t.Fatal("Raise lowered a tier")
	}
	if err := v.Raise(DataAccess, 3); err != nil {
		t.Fatal(err)
	}
	if v.Get(DataAccess) != 3 {
		t.Fatal("Raise did not raise")
	}
}

func TestVectorTermsGrowWithTiers(t *testing.T) {
	v := NewVector()
	base := len(v.Terms())
	v.MustSet(DataAccess, 2)
	if len(v.Terms()) <= base {
		t.Fatal("raising a tier did not add ontology terms")
	}
}

func TestVectorJSONRoundTrip(t *testing.T) {
	v := NewVector().MustSet(DataAccess, 2).MustSet(DataSchema, 3).MustSet(Provenance, 1)
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"interface"`) {
		t.Fatalf("JSON should use tier names: %s", data)
	}
	var back Vector
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for _, a := range Axes() {
		if back[a] != v[a] {
			t.Fatalf("round trip changed %s: %d != %d", a, back[a], v[a])
		}
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	v := NewVector().MustSet(DataAccess, 1)
	c := v.Clone()
	c.MustSet(DataAccess, 2)
	if v.Get(DataAccess) != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestVectorStringMentionsAllAxes(t *testing.T) {
	s := NewVector().String()
	for _, frag := range []string{"access=", "schema=", "semantics=", "granularity=", "custom=", "prov="} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() missing %q: %s", frag, s)
		}
	}
}

func TestDominancePreservesCapabilities(t *testing.T) {
	// Property: if v dominates w, every capability unlocked by w is
	// unlocked by v (raising gauges never removes automation).
	f := func(raw [6]uint8, extra [6]uint8) bool {
		w := NewVector()
		v := NewVector()
		for i, a := range Axes() {
			max := int(MaxTier(a))
			wt := int(raw[i]) % (max + 1)
			vt := wt + int(extra[i])%(max-wt+1)
			w[a] = Tier(wt)
			v[a] = Tier(vt)
		}
		if !v.Dominates(w) {
			return false
		}
		for _, c := range Capabilities() {
			if Unlocked(w, c) && !Unlocked(v, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
