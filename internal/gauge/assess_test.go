package gauge

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestAssessmentAttestRaisesAndRecordsEvidence(t *testing.T) {
	as := NewAssessment("gwas-paste")
	if err := as.Attest(DataSchema, 2, "schemas/genotype.json"); err != nil {
		t.Fatal(err)
	}
	if as.Vector.Get(DataSchema) != 2 {
		t.Fatal("attest did not raise tier")
	}
	if len(as.Evidence[DataSchema]) != 1 {
		t.Fatal("evidence not recorded")
	}
	// Attesting a lower tier keeps the higher one but may add evidence.
	if err := as.Attest(DataSchema, 1, "extra"); err != nil {
		t.Fatal(err)
	}
	if as.Vector.Get(DataSchema) != 2 {
		t.Fatal("attest lowered tier")
	}
}

func TestAssessmentValidate(t *testing.T) {
	as := NewAssessment("")
	if err := as.Validate(); err == nil {
		t.Fatal("accepted empty component name")
	}
	as = NewAssessment("c")
	as.Vector[DataAccess] = 3 // query-model without schema
	if err := as.Validate(); err == nil {
		t.Fatal("accepted dependency-violating vector")
	}
}

func TestCapabilityRequirementsAreValidVectors(t *testing.T) {
	for _, c := range Capabilities() {
		req, ok := Requirement(c)
		if !ok {
			t.Fatalf("capability %q missing requirement", c)
		}
		for a, tier := range req {
			if !a.Valid() {
				t.Fatalf("capability %q requires invalid axis %q", c, a)
			}
			if _, err := Info(a, tier); err != nil {
				t.Fatalf("capability %q requires nonexistent %s tier %d", c, a, tier)
			}
		}
	}
}

func TestRequirementReturnsCopy(t *testing.T) {
	req, _ := Requirement(CapAutoConvert)
	req[DataAccess] = 0
	req2, _ := Requirement(CapAutoConvert)
	if req2[DataAccess] == 0 {
		t.Fatal("Requirement leaked internal state")
	}
}

func TestUnlockedExamples(t *testing.T) {
	v := NewVector()
	if Unlocked(v, CapAutoConvert) {
		t.Fatal("all-unknown vector unlocked auto-convert")
	}
	v.MustSet(DataAccess, 2).MustSet(DataSchema, 3)
	if !Unlocked(v, CapAutoConvert) {
		t.Fatal("auto-convert should unlock at access=2 schema=3")
	}
	if Unlocked(v, "nonexistent-capability") {
		t.Fatal("unknown capability unlocked")
	}
}

func TestMissingForReportsShortfall(t *testing.T) {
	v := NewVector().MustSet(DataAccess, 1)
	gaps, ok := MissingFor(v, CapAutoConvert)
	if !ok {
		t.Fatal("known capability reported unknown")
	}
	if gaps[DataAccess] != 1 || gaps[DataSchema] != 3 {
		t.Fatalf("bad gaps: %v", gaps)
	}
	if _, ok := MissingFor(v, "nope"); ok {
		t.Fatal("unknown capability reported known")
	}
}

func TestFullVectorUnlocksEverything(t *testing.T) {
	v := NewVector()
	for _, a := range Axes() {
		v.MustSet(a, MaxTier(a))
	}
	if err := v.Validate(); err != nil {
		t.Fatalf("max vector invalid: %v", err)
	}
	caps := UnlockedCapabilities(v)
	if len(caps) != len(Capabilities()) {
		t.Fatalf("max vector unlocked %d/%d capabilities", len(caps), len(Capabilities()))
	}
}

func TestRegistryQueries(t *testing.T) {
	r := NewRegistry()
	a := NewAssessment("converter")
	a.Vector.MustSet(DataAccess, 2).MustSet(DataSchema, 3)
	b := NewAssessment("blackbox")
	if err := r.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(b); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	if got := r.WithCapability(CapAutoConvert); len(got) != 1 || got[0] != "converter" {
		t.Fatalf("WithCapability = %v", got)
	}
	if got := r.WithTerm("csv"); len(got) != 1 || got[0] != "converter" {
		t.Fatalf("WithTerm(csv) = %v", got)
	}
	if r.Get("nope") != nil {
		t.Fatal("missing component returned non-nil")
	}
	names := r.Components()
	if len(names) != 2 || names[0] != "blackbox" {
		t.Fatalf("Components() = %v", names)
	}
}

func TestRegistryJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	a := NewAssessment("c1")
	a.Attest(Provenance, 2, "prov/log.json")
	if err := r.Put(a); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	if err := json.Unmarshal(data, r2); err != nil {
		t.Fatal(err)
	}
	got := r2.Get("c1")
	if got == nil || got.Vector.Get(Provenance) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func TestDebtLedgerShrinksMonotonically(t *testing.T) {
	// Property: raising any gauge tier never increases debt.
	f := func(raw [6]uint8, axis uint8) bool {
		v := NewVector()
		for i, a := range Axes() {
			v[a] = Tier(int(raw[i]) % int(MaxTier(a)+1))
		}
		before := DebtLedger("c", v)
		a := Axes()[int(axis)%6]
		if v[a] >= MaxTier(a) {
			return true
		}
		raised := v.Clone()
		raised[a]++
		after := DebtLedger("c", raised)
		return after.MinutesPerReuse() <= before.MinutesPerReuse() &&
			after.InterventionCount() <= before.InterventionCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDebtLedgerZeroAtMaxVector(t *testing.T) {
	v := NewVector()
	for _, a := range Axes() {
		v.MustSet(a, MaxTier(a))
	}
	led := DebtLedger("ideal", v)
	if led.InterventionCount() != 0 || led.MinutesPerReuse() != 0 {
		t.Fatalf("fully characterised component still has debt: %s", led)
	}
}

func TestDebtLedgerAllUnknownHasEveryAxis(t *testing.T) {
	led := DebtLedger("raw", NewVector())
	byAxis := led.ByAxis()
	for _, a := range Axes() {
		if byAxis[a] == 0 {
			t.Fatalf("all-unknown component has no debt on axis %s", a)
		}
	}
	if led.String() == "" {
		t.Fatal("empty ledger report")
	}
}

func TestPayoffCurveSortedAndComplete(t *testing.T) {
	steps := PayoffCurve(NewVector())
	if len(steps) != 6 {
		t.Fatalf("expected a payoff step per axis, got %d", len(steps))
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].MinutesSaved > steps[i-1].MinutesSaved {
			t.Fatal("payoff curve not sorted descending")
		}
	}
	// At max vector there are no further steps.
	v := NewVector()
	for _, a := range Axes() {
		v.MustSet(a, MaxTier(a))
	}
	if got := PayoffCurve(v); len(got) != 0 {
		t.Fatalf("max vector has payoff steps: %v", got)
	}
}
