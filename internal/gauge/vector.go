package gauge

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Vector records a component's position on all six gauges. It is the
// metadata object that travels with a workflow component: the "progressive
// characterization" of Section III. The zero Vector is all-unknown.
type Vector map[Axis]Tier

// NewVector returns an all-zero (all-unknown) vector with every axis present.
func NewVector() Vector {
	v := make(Vector, 6)
	for _, a := range Axes() {
		v[a] = 0
	}
	return v
}

// Clone returns an independent copy of the vector.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	for a, t := range v {
		out[a] = t
	}
	return out
}

// Get returns the tier on the given axis (0 if unset).
func (v Vector) Get(a Axis) Tier { return v[a] }

// Set records a tier on an axis, validating that the axis exists and the
// tier is registered.
func (v Vector) Set(a Axis, t Tier) error {
	if !a.Valid() {
		return fmt.Errorf("gauge: invalid axis %q", a)
	}
	if _, err := Info(a, t); err != nil {
		return err
	}
	v[a] = t
	return nil
}

// MustSet is Set for statically known (axis, tier) pairs; it panics on error.
func (v Vector) MustSet(a Axis, t Tier) Vector {
	if err := v.Set(a, t); err != nil {
		panic(err)
	}
	return v
}

// Validate checks every recorded tier exists and that each tier's cross-axis
// requirements (e.g. query-model needs schema ≥ format-family) are satisfied
// by the rest of the vector. A vector that violates a dependency is not
// wrong data so much as not yet meaningful — the paper's point that higher
// tiers of one gauge depend on other gauges.
func (v Vector) Validate() error {
	for a, t := range v {
		ti, err := Info(a, t)
		if err != nil {
			return err
		}
		// A tier's requirements apply to every tier at or below it that
		// declares them; it suffices to check each achieved tier's own
		// declared requirements, plus those of lower tiers on the same axis.
		for _, lower := range tierTable[a] {
			if lower.Tier > t {
				break
			}
			for dep, min := range lower.Requires {
				if v[dep] < min {
					return fmt.Errorf("gauge: %s tier %q requires %s ≥ %d, have %d",
						a, ti.Name, dep, min, v[dep])
				}
			}
		}
	}
	return nil
}

// Dominates reports whether v is at least as high as w on every axis. This
// is the partial order on the reusability continuum; vectors on different
// axes are intentionally not totally ordered (a gauge is not a metric).
func (v Vector) Dominates(w Vector) bool {
	for _, a := range Axes() {
		if v[a] < w[a] {
			return false
		}
	}
	return true
}

// Meets reports whether the vector satisfies a requirement vector: at least
// the required tier on every axis the requirement mentions.
func (v Vector) Meets(req Vector) bool {
	for a, t := range req {
		if v[a] < t {
			return false
		}
	}
	return true
}

// Gaps returns, for each axis where v falls short of req, the shortfall
// (req tier minus current tier). An empty map means the requirement is met.
func (v Vector) Gaps(req Vector) map[Axis]Tier {
	gaps := map[Axis]Tier{}
	for a, t := range req {
		if v[a] < t {
			gaps[a] = t - v[a]
		}
	}
	return gaps
}

// Raise sets axis a to tier t if t is higher than the current value.
func (v Vector) Raise(a Axis, t Tier) error {
	if v[a] >= t {
		return nil
	}
	return v.Set(a, t)
}

// Terms returns the full set of ontology terms unlocked by the vector: all
// terms from every achieved tier on every axis, deduplicated.
func (v Vector) Terms() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range Axes() {
		for _, ti := range tierTable[a] {
			if ti.Tier > v[a] {
				break
			}
			for _, term := range ti.Terms {
				if !seen[term] {
					seen[term] = true
					out = append(out, term)
				}
			}
		}
	}
	return out
}

// String renders the vector compactly, e.g.
// "access=2/3 schema=3/3 semantics=1/4 granularity=2/3 custom=1/3 prov=1/3".
func (v Vector) String() string {
	short := map[Axis]string{
		DataAccess: "access", DataSchema: "schema", DataSemantics: "semantics",
		Granularity: "granularity", Customizability: "custom", Provenance: "prov",
	}
	parts := make([]string, 0, 6)
	for _, a := range Axes() {
		parts = append(parts, fmt.Sprintf("%s=%d/%d", short[a], v[a], MaxTier(a)))
	}
	return strings.Join(parts, " ")
}

// vectorJSON is the stable wire form: tier names rather than bare integers,
// so that documents stay meaningful as axes are extended.
type vectorJSON map[Axis]string

// MarshalJSON encodes the vector using stable tier names.
func (v Vector) MarshalJSON() ([]byte, error) {
	m := vectorJSON{}
	for a, t := range v {
		ti, err := Info(a, t)
		if err != nil {
			return nil, err
		}
		m[a] = ti.Name
	}
	return json.Marshal(m)
}

// UnmarshalJSON decodes tier names back into tiers.
func (v *Vector) UnmarshalJSON(data []byte) error {
	var m vectorJSON
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	out := NewVector()
	for a, name := range m {
		t, err := TierByName(a, name)
		if err != nil {
			return err
		}
		out[a] = t
	}
	*v = out
	return nil
}
