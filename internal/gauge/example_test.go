package gauge_test

import (
	"fmt"

	"fairflow/internal/gauge"
)

// Example shows the basic gauge workflow: assess a component, check what
// automation its metadata unlocks, and ask what investment pays off next.
func Example() {
	as := gauge.NewAssessment("genotype-converter")
	as.Attest(gauge.DataAccess, 2, "reads POSIX CSV")
	as.Attest(gauge.DataSchema, 3, "schemas/genotype.json")

	fmt.Println("auto-convert unlocked:", gauge.Unlocked(as.Vector, gauge.CapAutoConvert))

	led := gauge.DebtLedger(as.Component, as.Vector)
	fmt.Printf("debt: %d interventions per reuse\n", led.InterventionCount())

	best := gauge.PayoffCurve(as.Vector)[0]
	fmt.Printf("best next investment: %s to tier %d\n", best.Axis, best.ToTier)
	// Output:
	// auto-convert unlocked: true
	// debt: 29 interventions per reuse
	// best next investment: data-access to tier 3
}

// ExampleVector_Meets shows capability requirements as vectors.
func ExampleVector_Meets() {
	v := gauge.NewVector()
	v.MustSet(gauge.Granularity, 2).MustSet(gauge.Customizability, 1)
	req, _ := gauge.Requirement(gauge.CapTemplateLaunch)
	fmt.Println(v.Meets(req))
	// Output:
	// true
}
