package gauge

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// Assessment is the durable metadata record attaching a gauge vector to a
// concrete workflow component, together with the evidence for each achieved
// tier. Assessments are what a registry stores and what automation consumes.
type Assessment struct {
	Component  string            `json:"component"`
	Vector     Vector            `json:"vector"`
	Evidence   map[Axis][]string `json:"evidence,omitempty"`
	Notes      string            `json:"notes,omitempty"`
	AssessedAt time.Time         `json:"assessed_at,omitempty"`
}

// NewAssessment creates an all-unknown assessment for the named component.
func NewAssessment(component string) *Assessment {
	return &Assessment{
		Component: component,
		Vector:    NewVector(),
		Evidence:  map[Axis][]string{},
	}
}

// Attest raises the component to tier t on axis a, recording the evidence
// string (a pointer to the artifact that justifies the tier: a schema file,
// a generation model, a provenance log).
func (as *Assessment) Attest(a Axis, t Tier, evidence string) error {
	if err := as.Vector.Raise(a, t); err != nil {
		return err
	}
	if evidence != "" {
		as.Evidence[a] = append(as.Evidence[a], evidence)
	}
	return nil
}

// Validate checks the vector's internal consistency.
func (as *Assessment) Validate() error {
	if as.Component == "" {
		return fmt.Errorf("gauge: assessment missing component name")
	}
	return as.Vector.Validate()
}

// Capability names an automation capability that gauge metadata can unlock.
// Capabilities are the bridge from passive metadata to the "machine
// actionable" automation of Section III-A.
type Capability string

// The automation capabilities exercised by the experiments in Section V.
const (
	// CapAutoConvert: automated format conversion between this component's
	// output and another's input (GWAS wrangling, Section V-A).
	CapAutoConvert Capability = "auto-format-conversion"
	// CapGenerateIngress: generate data-ingress adapters from templates.
	CapGenerateIngress Capability = "generate-ingress"
	// CapGenerateComms: generate the communication components of a
	// collection/selection/forwarding subgraph (Section V-C).
	CapGenerateComms Capability = "generate-communication-code"
	// CapTemplateLaunch: create build/launch/execution templates.
	CapTemplateLaunch Capability = "templatized-launch"
	// CapCampaignSweep: lift component variables into campaign parameter
	// sweeps (Cheetah composition, Section V-D).
	CapCampaignSweep Capability = "campaign-parameter-sweep"
	// CapDynamicPolicy: install new behaviour policies at runtime via a
	// control channel (Section V-C) or policy-driven middleware (V-B).
	CapDynamicPolicy Capability = "runtime-policy-install"
	// CapResumableExecution: automatically resume partially completed
	// campaigns from provenance (Section V-D).
	CapResumableExecution Capability = "resumable-execution"
	// CapExportObject: package the component as a distributable, reusable
	// research object with filtered provenance.
	CapExportObject Capability = "export-research-object"
)

// capabilityRequirements maps each capability to the minimum gauge vector
// that unlocks it. These thresholds encode the paper's narrative: e.g.
// generating communication code needs "sufficient knowledge of data access
// patterns, data schema and semantics, as well as the degrees of granularity
// and customizability allowed by the software stack" (Section V-C).
var capabilityRequirements = map[Capability]Vector{
	CapAutoConvert:        {DataAccess: 2, DataSchema: 3},
	CapGenerateIngress:    {DataAccess: 2, DataSchema: 2, Granularity: 2},
	CapGenerateComms:      {DataAccess: 2, DataSchema: 3, DataSemantics: 1, Granularity: 2, Customizability: 2},
	CapTemplateLaunch:     {Granularity: 2, Customizability: 1},
	CapCampaignSweep:      {Granularity: 2, Customizability: 2, Provenance: 2},
	CapDynamicPolicy:      {DataSemantics: 1, Granularity: 3, Customizability: 2},
	CapResumableExecution: {Granularity: 2, Provenance: 2},
	CapExportObject:       {DataSchema: 1, Granularity: 1, Customizability: 1, Provenance: 3},
}

// Capabilities lists every defined capability in stable order.
func Capabilities() []Capability {
	out := make([]Capability, 0, len(capabilityRequirements))
	for c := range capabilityRequirements {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Requirement returns the minimum vector for a capability. The second value
// is false for an unknown capability.
func Requirement(c Capability) (Vector, bool) {
	req, ok := capabilityRequirements[c]
	if !ok {
		return nil, false
	}
	return req.Clone(), true
}

// Unlocked reports whether the vector satisfies the capability's
// requirements.
func Unlocked(v Vector, c Capability) bool {
	req, ok := capabilityRequirements[c]
	return ok && v.Meets(req)
}

// UnlockedCapabilities returns every capability the vector satisfies, in
// stable order.
func UnlockedCapabilities(v Vector) []Capability {
	var out []Capability
	for _, c := range Capabilities() {
		if Unlocked(v, c) {
			out = append(out, c)
		}
	}
	return out
}

// MissingFor returns, per axis, the shortfall between the vector and the
// capability requirement — the concrete metadata work that would unlock the
// capability. Nil map plus ok=false for unknown capabilities.
func MissingFor(v Vector, c Capability) (map[Axis]Tier, bool) {
	req, ok := capabilityRequirements[c]
	if !ok {
		return nil, false
	}
	return v.Gaps(req), true
}

// Registry stores assessments by component name and answers ecosystem-level
// queries: which components unlock a capability, which terms are available,
// where the reuse bottlenecks are.
type Registry struct {
	assessments map[string]*Assessment
}

// NewRegistry returns an empty assessment registry.
func NewRegistry() *Registry {
	return &Registry{assessments: map[string]*Assessment{}}
}

// Put validates and stores (or replaces) an assessment.
func (r *Registry) Put(as *Assessment) error {
	if err := as.Validate(); err != nil {
		return err
	}
	r.assessments[as.Component] = as
	return nil
}

// Get returns the assessment for a component, or nil if absent.
func (r *Registry) Get(component string) *Assessment {
	return r.assessments[component]
}

// Len reports the number of stored assessments.
func (r *Registry) Len() int { return len(r.assessments) }

// Components returns all component names in sorted order.
func (r *Registry) Components() []string {
	out := make([]string, 0, len(r.assessments))
	for name := range r.assessments {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// WithCapability returns the names of components whose vectors unlock c.
func (r *Registry) WithCapability(c Capability) []string {
	var out []string
	for _, name := range r.Components() {
		if Unlocked(r.assessments[name].Vector, c) {
			out = append(out, name)
		}
	}
	return out
}

// WithTerm returns the names of components whose vectors unlock the given
// ontology term.
func (r *Registry) WithTerm(term string) []string {
	var out []string
	for _, name := range r.Components() {
		for _, t := range r.assessments[name].Vector.Terms() {
			if t == term {
				out = append(out, name)
				break
			}
		}
	}
	return out
}

// MarshalJSON encodes the registry as a sorted array of assessments.
func (r *Registry) MarshalJSON() ([]byte, error) {
	arr := make([]*Assessment, 0, len(r.assessments))
	for _, name := range r.Components() {
		arr = append(arr, r.assessments[name])
	}
	return json.Marshal(arr)
}

// UnmarshalJSON decodes an array of assessments into the registry.
func (r *Registry) UnmarshalJSON(data []byte) error {
	var arr []*Assessment
	if err := json.Unmarshal(data, &arr); err != nil {
		return err
	}
	r.assessments = map[string]*Assessment{}
	for _, as := range arr {
		if as.Evidence == nil {
			as.Evidence = map[Axis][]string{}
		}
		if err := r.Put(as); err != nil {
			return err
		}
	}
	return nil
}
