// Package gauge implements the paper's primary contribution: the six gauge
// properties for reusable workflows (Section III, Fig. 1). Three gauges
// describe the data side of a workflow component — access, schema, and
// semantics — and three describe the software side — granularity,
// customizability, and provenance.
//
// A gauge is deliberately not a metric: it is an ordered category axis along
// which the reusability of a component progresses, rather than a score that
// ranks arbitrary workflows against one another. Each tier on each gauge is
// specific, testable metadata; the higher the tier, the more of the
// component's reuse mechanics an automated system can take over, and the less
// technical debt is serviced by humans.
package gauge

import (
	"fmt"
	"sort"
)

// Axis identifies one of the six gauge properties.
type Axis string

// The six gauge axes from Box I of the paper.
const (
	DataAccess      Axis = "data-access"
	DataSchema      Axis = "data-schema"
	DataSemantics   Axis = "data-semantics"
	Granularity     Axis = "software-granularity"
	Customizability Axis = "software-customizability"
	Provenance      Axis = "software-provenance"
)

// Axes lists all six gauges in the paper's presentation order: the three
// data gauges followed by the three software gauges.
func Axes() []Axis {
	return []Axis{DataAccess, DataSchema, DataSemantics, Granularity, Customizability, Provenance}
}

// IsData reports whether the axis is one of the three data gauges.
func (a Axis) IsData() bool {
	return a == DataAccess || a == DataSchema || a == DataSemantics
}

// IsSoftware reports whether the axis is one of the three software gauges.
func (a Axis) IsSoftware() bool {
	return a == Granularity || a == Customizability || a == Provenance
}

// Valid reports whether the axis is one of the six defined gauges.
func (a Axis) Valid() bool {
	return a.IsData() || a.IsSoftware()
}

// Tier is a level on a gauge axis. Tier 0 ("unknown") always means that
// nothing is recorded for the axis; higher tiers add explicitness. Tiers are
// ordered within an axis but deliberately not comparable across axes.
type Tier int

// TierInfo describes one level of one gauge: its rank on the axis, a short
// stable name usable in metadata documents, a human description, and the
// ontology terms the tier makes machine-queriable (Section III-A: each gauge
// "defines an ontology of terms that can be mapped into machine-queriable
// form").
type TierInfo struct {
	Axis        Axis     `json:"axis"`
	Tier        Tier     `json:"tier"`
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Terms       []string `json:"terms,omitempty"`
	// Requires lists cross-gauge dependencies: minimum tiers on other axes
	// that must hold before this tier is meaningful. The paper's example: a
	// useful SQL-query tier on data access requires a minimal degree of data
	// schema characterisation.
	Requires map[Axis]Tier `json:"requires,omitempty"`
}

// tierTable is the registry of gauge levels, transcribed from Fig. 1 and the
// Section III prose. The lists are explicitly non-exhaustive in the paper;
// RegisterTier allows extensions, which is how downstream ecosystems are
// expected to refine the model.
var tierTable = map[Axis][]TierInfo{
	DataAccess: {
		{Axis: DataAccess, Tier: 0, Name: "unknown",
			Description: "Nothing is recorded about how the data is reached."},
		{Axis: DataAccess, Tier: 1, Name: "protocol",
			Description: "The basic access protocol is known (e.g. POSIX file, zeroMQ queue, TCP socket).",
			Terms:       []string{"posix-file", "zeromq-queue", "tcp-socket", "database-connection", "in-memory"}},
		{Axis: DataAccess, Tier: 2, Name: "interface",
			Description: "The data I/O interface or library is known (e.g. CSV reader, HDF5, ADIOS, mySQL).",
			Terms:       []string{"csv", "json-lines", "hdf5", "adios", "mysql", "fbs"}},
		{Axis: DataAccess, Tier: 3, Name: "query-model",
			Description: "The supported query model is captured (linear access, random element access, SQL query).",
			Terms:       []string{"linear-scan", "random-access", "sql-query", "windowed-read"},
			Requires:    map[Axis]Tier{DataSchema: 1}},
	},
	DataSchema: {
		{Axis: DataSchema, Tier: 0, Name: "unknown",
			Description: "The format of produced/consumed data is unrecorded; it is an opaque string of bytes."},
		{Axis: DataSchema, Tier: 1, Name: "format-family",
			Description: "The format family is known: human-readable ASCII (CSV, JSON), self-describing binary (ADIOS, HDF5), or custom binary (e.g. MatML).",
			Terms:       []string{"ascii", "self-describing-binary", "custom-binary"}},
		{Axis: DataSchema, Tier: 2, Name: "structure",
			Description: "The logical structure is captured: typed arrays, tables, graphs, meshes.",
			Terms:       []string{"byte-stream", "typed-array", "table", "graph", "mesh", "image-stack"}},
		{Axis: DataSchema, Tier: 3, Name: "full-schema",
			Description: "A complete machine-readable schema (field names, types, shapes, units) is attached, enabling automated format conversion and templatized configuration.",
			Terms:       []string{"field-types", "dimensions", "units", "conversion-source"}},
	},
	DataSemantics: {
		{Axis: DataSemantics, Tier: 0, Name: "unknown",
			Description: "Nothing is recorded about intended production or consumption semantics."},
		{Axis: DataSemantics, Tier: 1, Name: "consumption-model",
			Description: "Ordering and consumption granularity are captured: is ordering important, are items consumed in a window or element by element?",
			Terms:       []string{"ordered", "unordered", "element-wise", "windowed", "first-precious"}},
		{Axis: DataSemantics, Tier: 2, Name: "data-fusion",
			Description: "Automatable format transactions are captured (the paper's 'data fusion' category): merges, joins, summarisation relationships between streams.",
			Terms:       []string{"merge", "join", "summarize", "broadcast"}},
		{Axis: DataSemantics, Tier: 3, Name: "format-evolution",
			Description: "Format version lineage is recorded, capturing the conversions that take a format back to an earlier version.",
			Terms:       []string{"version-lineage", "downgrade-path", "upgrade-path"}},
		{Axis: DataSemantics, Tier: 4, Name: "dataset-semantics",
			Description: "Dataset-level meaning is explicit: how individual elements combine into a complete dataset (e.g. labelled cancerous/healthy tissue images for a segmentation training set).",
			Terms:       []string{"label-classes", "train-test-role", "cohort-membership"}},
	},
	Granularity: {
		{Axis: Granularity, Tier: 0, Name: "black-box",
			Description: "The component is an undifferentiated bundle; the whole multi-tier operation is described as a single opaque unit."},
		{Axis: Granularity, Tier: 1, Name: "component-scale",
			Description: "The scale of the constituent components is identified: code fragment, individual executable, bundled workflow, or internal service.",
			Terms:       []string{"code-fragment", "executable", "bundled-workflow", "internal-service"}},
		{Axis: Granularity, Tier: 2, Name: "configuration-explicit",
			Description: "Configuration support is explicit, allowing templates for building, launching, and executing the component.",
			Terms:       []string{"build-template", "launch-template", "execution-template"}},
		{Axis: Granularity, Tier: 3, Name: "io-semantics",
			Description: "The I/O semantics of the component are captured (e.g. the 'first precious' pattern where the first element calibrates deltas for the rest), leveraging the data schema and semantics gauges.",
			Terms:       []string{"io-contract", "first-precious", "stateless", "stateful-stream"},
			Requires:    map[Axis]Tier{DataSchema: 2, DataSemantics: 1}},
	},
	Customizability: {
		{Axis: Customizability, Tier: 0, Name: "fixed",
			Description: "No customization points are recorded; reuse requires editing the component itself."},
		{Axis: Customizability, Tier: 1, Name: "variables-identified",
			Description: "The configuration characteristics that can be modified are packaged explicitly: the subset of variables relevant to customizing the component for a new use.",
			Terms:       []string{"config-variable", "default-value", "legal-range"}},
		{Axis: Customizability, Tier: 2, Name: "machine-actionable-model",
			Description: "Variable identification is formalised into a machine-actionable model (the Skel approach): a concise model of user decisions drives regeneration of the implementation.",
			Terms:       []string{"generation-model", "template-binding", "regenerable"}},
		{Axis: Customizability, Tier: 3, Name: "model-parameterization",
			Description: "The customization profile records how variables relate to one another and how they change in a campaign context (links to the Provenance gauge's campaign-knowledge tier).",
			Terms:       []string{"variable-relation", "sweep-axis", "campaign-binding"},
			Requires:    map[Axis]Tier{Provenance: 2}},
	},
	Provenance: {
		{Axis: Provenance, Tier: 0, Name: "none",
			Description: "No provenance is gathered."},
		{Axis: Provenance, Tier: 1, Name: "execution-logs",
			Description: "Standard provenance data and logs exist for each component and execution instance.",
			Terms:       []string{"run-record", "input-digest", "output-digest", "environment-capture"}},
		{Axis: Provenance, Tier: 2, Name: "campaign-knowledge",
			Description: "Explicit context for the campaign in which each execution took place, enabling summaries and queries over heterogeneous provenance logs.",
			Terms:       []string{"campaign-id", "sweep-point", "cross-run-query"}},
		{Axis: Provenance, Tier: 3, Name: "exportability",
			Description: "Policies track which gathered provenance is amenable and relevant for inclusion in a distributable, reusable research object.",
			Terms:       []string{"export-policy", "redaction-rule", "reuse-context"}},
	},
}

// Levels returns the registered tiers for an axis in ascending tier order.
// The returned slice is a copy; mutating it does not affect the registry.
func Levels(a Axis) []TierInfo {
	ts := tierTable[a]
	out := make([]TierInfo, len(ts))
	copy(out, ts)
	return out
}

// MaxTier returns the highest registered tier for the axis, or -1 if the
// axis is unknown.
func MaxTier(a Axis) Tier {
	ts := tierTable[a]
	if len(ts) == 0 {
		return -1
	}
	return ts[len(ts)-1].Tier
}

// Info returns the TierInfo for (axis, tier).
func Info(a Axis, t Tier) (TierInfo, error) {
	for _, ti := range tierTable[a] {
		if ti.Tier == t {
			return ti, nil
		}
	}
	return TierInfo{}, fmt.Errorf("gauge: no tier %d on axis %q", t, a)
}

// TierByName resolves a tier on an axis by its stable name.
func TierByName(a Axis, name string) (Tier, error) {
	for _, ti := range tierTable[a] {
		if ti.Name == name {
			return ti.Tier, nil
		}
	}
	return 0, fmt.Errorf("gauge: axis %q has no tier named %q", a, name)
}

// RegisterTier appends an extension tier to an axis. The paper states the
// Fig. 1 lists "are not intended to be exhaustive"; ecosystems refine the
// gauges over time. The new tier must extend the axis contiguously (tier =
// current max + 1) and must carry a unique name.
func RegisterTier(ti TierInfo) error {
	if !ti.Axis.Valid() {
		return fmt.Errorf("gauge: invalid axis %q", ti.Axis)
	}
	if ti.Name == "" {
		return fmt.Errorf("gauge: tier name required")
	}
	cur := tierTable[ti.Axis]
	if want := cur[len(cur)-1].Tier + 1; ti.Tier != want {
		return fmt.Errorf("gauge: tier %d does not extend axis %q contiguously (want %d)", ti.Tier, ti.Axis, want)
	}
	for _, existing := range cur {
		if existing.Name == ti.Name {
			return fmt.Errorf("gauge: axis %q already has tier named %q", ti.Axis, ti.Name)
		}
	}
	tierTable[ti.Axis] = append(cur, ti)
	return nil
}

// TermIndex maps every registered ontology term to the (axis, tier) pairs
// that introduce it. This is the machine-queriable form of the gauge
// ontology: automation asks "which tier gives me term X?".
func TermIndex() map[string][]TierInfo {
	idx := map[string][]TierInfo{}
	for _, a := range Axes() {
		for _, ti := range tierTable[a] {
			for _, term := range ti.Terms {
				idx[term] = append(idx[term], ti)
			}
		}
	}
	for term := range idx {
		sort.Slice(idx[term], func(i, j int) bool {
			if idx[term][i].Axis != idx[term][j].Axis {
				return idx[term][i].Axis < idx[term][j].Axis
			}
			return idx[term][i].Tier < idx[term][j].Tier
		})
	}
	return idx
}
