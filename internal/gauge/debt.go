package gauge

import (
	"fmt"
	"sort"
	"strings"
)

// Intervention is one human action a reuse event requires because metadata
// below some gauge tier is missing. Technical debt, in the paper's
// formulation, is "the degree of human effort needed to repurpose or reuse a
// piece of data or code" — anything not explicitly implemented in the item
// itself.
type Intervention struct {
	Axis        Axis   `json:"axis"`
	BelowTier   Tier   `json:"below_tier"` // the unmet tier that would remove this intervention
	Description string `json:"description"`
	// MinutesEach is the modelled human cost of servicing this intervention
	// once. The absolute numbers are illustrative; the experiments only rely
	// on counts and relative ordering.
	MinutesEach float64 `json:"minutes_each"`
	// PerReuse is how many times the intervention recurs in a single reuse
	// event (e.g. once per generated submit script).
	PerReuse int `json:"per_reuse"`
}

// interventionCatalog models the human actions that remain necessary while
// an axis sits below a given tier. Each entry is removed from the debt
// ledger as soon as the component reaches the tier — automation then covers
// it ("no debt accrues from code that can be efficiently deleted and
// regenerated when needed", Section III).
var interventionCatalog = []Intervention{
	{DataAccess, 1, "ask the author how/where the data is reached", 30, 1},
	{DataAccess, 2, "read code to discover the I/O library and call pattern", 45, 1},
	{DataAccess, 3, "hand-write access shims for each new consumer", 60, 1},
	{DataSchema, 1, "reverse-engineer the byte layout of inputs/outputs", 90, 1},
	{DataSchema, 2, "hand-map fields between producer and consumer structures", 45, 1},
	{DataSchema, 3, "write and test a custom format converter", 120, 1},
	{DataSemantics, 1, "determine ordering/windowing requirements experimentally", 60, 1},
	{DataSemantics, 2, "hand-code merge/join glue between streams", 60, 1},
	{DataSemantics, 3, "reconstruct version differences between format revisions", 45, 1},
	{DataSemantics, 4, "re-derive dataset-level labels/roles from the author", 30, 1},
	{Granularity, 1, "treat the component as a black box; rerun whole bundle for any change", 20, 1},
	{Granularity, 2, "hand-edit build/launch scripts for the new machine", 30, 3},
	{Granularity, 3, "manually verify I/O contract assumptions (e.g. first-precious)", 40, 1},
	{Customizability, 1, "grep the source for tunable constants before each run", 25, 2},
	{Customizability, 2, "manually perturb scripts for every run configuration", 10, 8},
	{Customizability, 3, "manually co-ordinate related variables across a sweep", 15, 4},
	{Provenance, 1, "run down the hall to ask which run produced which file", 20, 2},
	{Provenance, 2, "manually curate failed runs and build resubmission lists", 25, 2},
	{Provenance, 3, "hand-sanitise logs before sharing the workflow", 35, 1},
}

// DebtItem is one outstanding intervention in a component's ledger.
type DebtItem struct {
	Intervention
	Component string `json:"component"`
}

// Ledger is the technical-debt ledger computed from a gauge vector: the
// human interventions a single reuse event still requires.
type Ledger struct {
	Component string     `json:"component"`
	Items     []DebtItem `json:"items"`
}

// DebtLedger computes the outstanding interventions for a component at the
// given vector. An intervention is outstanding while the axis tier is below
// the intervention's tier.
func DebtLedger(component string, v Vector) Ledger {
	led := Ledger{Component: component}
	for _, iv := range interventionCatalog {
		if v[iv.Axis] < iv.BelowTier {
			led.Items = append(led.Items, DebtItem{Intervention: iv, Component: component})
		}
	}
	return led
}

// InterventionCount is the number of distinct human interventions per reuse,
// weighted by recurrence.
func (l Ledger) InterventionCount() int {
	n := 0
	for _, it := range l.Items {
		n += it.PerReuse
	}
	return n
}

// MinutesPerReuse is the modelled total human minutes a single reuse event
// costs at the current tiers.
func (l Ledger) MinutesPerReuse() float64 {
	var m float64
	for _, it := range l.Items {
		m += it.MinutesEach * float64(it.PerReuse)
	}
	return m
}

// ByAxis groups outstanding intervention counts per axis, identifying where
// the reuse bottleneck lives.
func (l Ledger) ByAxis() map[Axis]int {
	out := map[Axis]int{}
	for _, it := range l.Items {
		out[it.Axis] += it.PerReuse
	}
	return out
}

// String renders the ledger as a short human-readable report.
func (l Ledger) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "technical debt for %s: %d interventions, %.0f min/reuse\n",
		l.Component, l.InterventionCount(), l.MinutesPerReuse())
	items := append([]DebtItem(nil), l.Items...)
	sort.Slice(items, func(i, j int) bool {
		if items[i].Axis != items[j].Axis {
			return items[i].Axis < items[j].Axis
		}
		return items[i].BelowTier < items[j].BelowTier
	})
	for _, it := range items {
		fmt.Fprintf(&b, "  [%s<%d] ×%d %s (%.0f min each)\n",
			it.Axis, it.BelowTier, it.PerReuse, it.Description, it.MinutesEach)
	}
	return b.String()
}

// PayoffStep describes the debt reduction from raising one axis by one tier:
// the "continuum of reusability" made explicit and selectable.
type PayoffStep struct {
	Axis          Axis    `json:"axis"`
	ToTier        Tier    `json:"to_tier"`
	MinutesSaved  float64 `json:"minutes_saved"`
	Interventions int     `json:"interventions_removed"`
}

// PayoffCurve enumerates, from the current vector, the marginal value of
// every available single-tier raise, sorted by minutes saved (descending).
// This is the decision aid a team uses to choose which metadata to invest
// in next.
func PayoffCurve(v Vector) []PayoffStep {
	var steps []PayoffStep
	for _, a := range Axes() {
		next := v[a] + 1
		if next > MaxTier(a) {
			continue
		}
		step := PayoffStep{Axis: a, ToTier: next}
		for _, iv := range interventionCatalog {
			if iv.Axis == a && iv.BelowTier == next {
				step.MinutesSaved += iv.MinutesEach * float64(iv.PerReuse)
				step.Interventions += iv.PerReuse
			}
		}
		steps = append(steps, step)
	}
	sort.Slice(steps, func(i, j int) bool {
		if steps[i].MinutesSaved != steps[j].MinutesSaved {
			return steps[i].MinutesSaved > steps[j].MinutesSaved
		}
		return steps[i].Axis < steps[j].Axis
	})
	return steps
}
