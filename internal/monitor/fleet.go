package monitor

import "fairflow/internal/telemetry"

// Metric names the fleet rollup aggregates: the per-worker histograms the
// remote engine's telemetry sync merges into the coordinator registry
// (one series per worker label).
const (
	fleetQueueWaitMetric = "remote_worker.queue_wait_seconds"
	fleetExecMetric      = "remote_worker.run_seconds"
)

// DistSummary condenses one fleet-wide histogram: observation count, mean,
// and interpolated quantiles.
type DistSummary struct {
	Count       uint64  `json:"count"`
	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P95Seconds  float64 `json:"p95_seconds"`
}

// FleetHealth is the distributed campaign's execution rollup, aggregated
// across every worker's merged series: how long runs queued on workers
// before a slot picked them up, and how long they executed.
type FleetHealth struct {
	QueueWait *DistSummary `json:"queue_wait,omitempty"`
	Exec      *DistSummary `json:"exec,omitempty"`
}

// fleetFromSnapshot builds the fleet rollup from the merged worker
// histograms in a metrics snapshot (nil when no worker telemetry landed).
func fleetFromSnapshot(snap telemetry.MetricsSnapshot) *FleetHealth {
	qw := sumSeries(snap, fleetQueueWaitMetric)
	ex := sumSeries(snap, fleetExecMetric)
	if qw == nil && ex == nil {
		return nil
	}
	return &FleetHealth{QueueWait: qw, Exec: ex}
}

// sumSeries folds every series of one histogram name (one per worker
// label) into a single distribution and summarises it. Series whose bucket
// layout disagrees with the first seen are skipped — they cannot be added
// meaningfully.
func sumSeries(snap telemetry.MetricsSnapshot, name string) *DistSummary {
	var (
		bounds []float64
		counts []uint64
		inf    uint64
		count  uint64
		sum    float64
	)
	for _, h := range snap.Histograms {
		if h.Name != name || h.Count == 0 {
			continue
		}
		if bounds == nil {
			bounds = h.Bounds
			counts = make([]uint64, len(h.Counts))
		}
		if len(h.Counts) != len(counts) {
			continue
		}
		for i, c := range h.Counts {
			counts[i] += c
		}
		inf += h.Inf
		count += h.Count
		sum += h.Sum
	}
	if count == 0 {
		return nil
	}
	return &DistSummary{
		Count:       count,
		MeanSeconds: sum / float64(count),
		P50Seconds:  histQuantile(bounds, counts, inf, 0.50),
		P95Seconds:  histQuantile(bounds, counts, inf, 0.95),
	}
}

// histQuantile estimates quantile q from fixed buckets, Prometheus-style:
// linear interpolation inside the bucket the rank lands in. Observations
// in the +Inf bucket clamp to the last finite bound — an estimate can
// never exceed what the buckets resolve.
func histQuantile(bounds []float64, counts []uint64, inf uint64, q float64) float64 {
	if len(bounds) == 0 {
		return 0
	}
	total := inf
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) >= rank {
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			if c == 0 {
				return bounds[i]
			}
			return lo + (bounds[i]-lo)*(rank-float64(prev))/float64(c)
		}
	}
	return bounds[len(bounds)-1]
}
