package monitor

import (
	"strings"
	"testing"
	"time"

	"fairflow/internal/telemetry"
	"fairflow/internal/telemetry/eventlog"
)

// TestRetryStormRuleFiresAndResolves drives the canned retry-storm rule
// through a synthetic campaign journal: a burst of run.retry events (with
// the savanna.retries_total counter the engines export alongside) trips
// the alert, and a quiet interval resolves it — both transitions recorded
// back into the event log.
func TestRetryStormRuleFiresAndResolves(t *testing.T) {
	clk := newSimClock()
	log := eventlog.NewLog()
	log.SetClock(clk)
	reg := telemetry.NewRegistry()
	retries := reg.Counter("savanna.retries_total")

	m := New(Config{Rules: []Rule{RetryStormRule(0.5)}}, reg, log)

	storm := func(h CampaignHealth) AlertState {
		for _, a := range h.Alerts {
			if a.Alert == "retry-storm" {
				return a
			}
		}
		t.Fatal("retry-storm alert missing from report")
		return AlertState{}
	}

	// First evaluation establishes the rate base; nothing can fire yet.
	if storm(m.Health()).Firing {
		t.Fatal("retry-storm firing before any retries")
	}

	// Storm: 12 retries in 10 simulated seconds → 1.2/s > 0.5.
	for i := 0; i < 12; i++ {
		log.Append(eventlog.Warn, eventlog.RunRetry, "transient", 0,
			telemetry.String("run", "g/s/run-00001"))
		retries.Inc()
	}
	clk.advance(10 * time.Second)
	h := m.Health()
	if a := storm(h); !a.Firing || a.Value != 1.2 {
		t.Fatalf("retry-storm after burst: %+v, want firing at 1.2/s", a)
	}
	if h.Retries != 12 {
		t.Errorf("health retries = %d, want 12", h.Retries)
	}

	// Quiet interval: the rate falls to zero and the alert resolves.
	clk.advance(10 * time.Second)
	if storm(m.Health()).Firing {
		t.Fatal("retry-storm still firing after the storm ended")
	}

	var got []string
	for _, ev := range log.Snapshot() {
		if ev.Type == eventlog.AlertFiring || ev.Type == eventlog.AlertResolved {
			got = append(got, ev.Type+":"+ev.Attr("alert"))
		}
	}
	want := "alert.firing:retry-storm,alert.resolved:retry-storm"
	if strings.Join(got, ",") != want {
		t.Errorf("alert transitions %v, want [%v]", got, want)
	}
}

// TestResilienceCountsInHealth folds retry, quarantine and abort events
// into the health report: quarantined runs leave the running set and count
// toward completion, and a tripped stop condition voids the ETA.
func TestResilienceCountsInHealth(t *testing.T) {
	clk, log, m := harness(t, Config{TotalRuns: 4})

	for _, id := range []string{"a", "b", "c"} {
		runEv(log, eventlog.RunStart, id)
	}
	clk.advance(10 * time.Second)
	runEv(log, eventlog.RunSucceeded, "a")
	log.Append(eventlog.Warn, eventlog.RunRetry, "transient", 0,
		telemetry.String("run", "b"))
	clk.advance(10 * time.Second)
	runEv(log, eventlog.RunSucceeded, "b")
	log.Append(eventlog.Error, eventlog.RunQuarantined, "poisoned point", 0,
		telemetry.String("run", "c"), telemetry.String("point", "i=3"))
	log.Append(eventlog.Error, eventlog.CampaignAborted, "failure fraction 0.33 exceeds 0.25", 0)

	h := m.Health()
	if h.Retries != 1 || h.Quarantined != 1 || !h.Aborted {
		t.Fatalf("retries/quarantined/aborted = %d/%d/%v, want 1/1/true",
			h.Retries, h.Quarantined, h.Aborted)
	}
	if h.Running != 0 {
		t.Errorf("quarantined run still counted running: %d", h.Running)
	}
	if h.Completed != 3 {
		t.Errorf("completed = %d, want 3 (2 executed + 1 quarantined)", h.Completed)
	}
	if h.HasETA {
		t.Error("aborted campaign still projects an ETA")
	}

	var buf strings.Builder
	RenderText(&buf, h)
	if !strings.Contains(buf.String(), "1 retries · 1 quarantined") ||
		!strings.Contains(buf.String(), "ABORTED") {
		t.Errorf("render missing fault lines:\n%s", buf.String())
	}
}
