package monitor

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// fmtDuration renders seconds compactly (1h02m, 3m20s, 45s).
func fmtDuration(seconds float64) string {
	d := time.Duration(seconds * float64(time.Second)).Round(time.Second)
	if d >= time.Hour {
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	}
	if d >= time.Minute {
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	}
	return fmt.Sprintf("%ds", int(d.Seconds()))
}

// progressBar renders a [####----] bar of the given width.
func progressBar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	fill := int(frac*float64(width) + 0.5)
	return "[" + strings.Repeat("#", fill) + strings.Repeat("-", width-fill) + "]"
}

// RenderText writes a terminal-friendly health report — the body of the
// fairctl watch view.
func RenderText(w io.Writer, h CampaignHealth) {
	if h.Campaign != "" {
		fmt.Fprintf(w, "campaign  %s\n", h.Campaign)
	}
	if h.TotalRuns > 0 {
		fmt.Fprintf(w, "progress  %s %d/%d (%.0f%%)\n",
			progressBar(h.Progress, 24), h.Completed, h.TotalRuns, h.Progress*100)
	} else {
		fmt.Fprintf(w, "progress  %d completed (total unknown)\n", h.Completed)
	}
	fmt.Fprintf(w, "runs      %d running · %d executed · %d cached · %d failed · %d killed\n",
		h.Running, h.Executed, h.Cached, h.Failed, h.Killed)
	if h.Retries > 0 || h.Quarantined > 0 {
		fmt.Fprintf(w, "faults    %d retries · %d quarantined\n", h.Retries, h.Quarantined)
	}
	if h.Aborted {
		fmt.Fprintf(w, "ABORTED   stop condition tripped — remaining runs skipped\n")
	}
	if h.ThroughputPerSec > 0 {
		fmt.Fprintf(w, "rate      %.3g runs/s", h.ThroughputPerSec)
		if h.HasETA {
			fmt.Fprintf(w, " · ETA %s", fmtDuration(h.ETASeconds))
		}
		fmt.Fprintln(w)
	}
	if h.MedianRunSeconds > 0 {
		fmt.Fprintf(w, "median    %s per run\n", fmtDuration(h.MedianRunSeconds))
	}
	if len(h.Workers) > 0 {
		fmt.Fprintf(w, "workers   %d live · %d dead\n", h.WorkersLive, h.WorkersDead)
		for _, wk := range h.Workers {
			state := "live"
			if !wk.Live {
				state = "gone"
			}
			fmt.Fprintf(w, "  %-12s %s · %d in flight · %d done", wk.Worker, state, wk.RunsInFlight, wk.Completed)
			if wk.Lost > 0 {
				fmt.Fprintf(w, " · %d lost", wk.Lost)
			}
			if wk.Live && wk.LastSeenAgeSeconds > 0 {
				fmt.Fprintf(w, " · seen %s ago", fmtDuration(wk.LastSeenAgeSeconds))
			}
			fmt.Fprintln(w)
		}
	}
	if f := h.Fleet; f != nil {
		fmt.Fprintf(w, "fleet    ")
		if d := f.QueueWait; d != nil {
			fmt.Fprintf(w, " queue wait p50 %.3gs · p95 %.3gs", d.P50Seconds, d.P95Seconds)
		}
		if d := f.Exec; d != nil {
			if f.QueueWait != nil {
				fmt.Fprintf(w, " ·")
			}
			fmt.Fprintf(w, " exec p50 %.3gs · p95 %.3gs (%d runs)", d.P50Seconds, d.P95Seconds, d.Count)
		}
		fmt.Fprintln(w)
	}
	for _, s := range h.Stragglers {
		fmt.Fprintf(w, "straggler %s — running %s, %.1f× the %s median\n",
			s.Run, fmtDuration(s.ElapsedSeconds), s.Factor, fmtDuration(s.MedianSeconds))
	}
	if h.Stalled {
		fmt.Fprintf(w, "STALLED   no progress for %s\n", fmtDuration(h.StallSeconds))
	}
	for _, a := range h.Alerts {
		if !a.Firing {
			continue
		}
		switch a.Alert {
		case AlertStraggler, AlertStall:
			// Rendered above with detail.
		default:
			fmt.Fprintf(w, "ALERT     %s firing (value %.4g, threshold %.4g)\n",
				a.Alert, a.Value, a.Threshold)
		}
	}
}
