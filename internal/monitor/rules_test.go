package monitor

import "testing"

func TestParseRule(t *testing.T) {
	cases := []struct {
		in   string
		want Rule
	}{
		{"failure-burst: rate(savanna.runs_failed_total) > 0.05",
			Rule{Name: "failure-burst", Metric: "savanna.runs_failed_total", Predicate: Above, Threshold: 0.05, Rate: true}},
		{"queue-depth: hpcsim.jobs_queued > 100",
			Rule{Name: "queue-depth", Metric: "hpcsim.jobs_queued", Predicate: Above, Threshold: 100}},
		{"starved: rate(savanna.runs_executed_total) < 0.001",
			Rule{Name: "starved", Metric: "savanna.runs_executed_total", Predicate: Below, Threshold: 0.001, Rate: true}},
		{"spaced :  cas.action_hits_total  <  2 ",
			Rule{Name: "spaced", Metric: "cas.action_hits_total", Predicate: Below, Threshold: 2}},
	}
	for _, c := range cases {
		got, err := ParseRule(c.in)
		if err != nil {
			t.Errorf("ParseRule(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseRule(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseRuleErrors(t *testing.T) {
	for _, in := range []string{
		"no comparator here",
		"name: metric >= 5", // >= parses as "> =5" → bad threshold
		"name: rate(metric > 5",
		": metric > 5",
		"name: > 5",
		"name: metric > banana",
		"name: metric > NaN",       // non-finite threshold
		"name: metric < +Inf",      // non-finite threshold
		"name: metric > -Inf",      // non-finite threshold
		"name: some metric > 5",    // whitespace inside the metric name
		"name: rate (m) > 5",       // space between rate and ( → metric "rate (m"... rejected
		"name: a\tmetric > 5",      // tab inside the metric name
	} {
		if r, err := ParseRule(in); err == nil {
			t.Errorf("ParseRule(%q) accepted: %+v", in, r)
		}
	}
}

func TestRuleStringRoundTrip(t *testing.T) {
	for _, r := range []Rule{
		{Name: "a", Metric: "m.x", Predicate: Above, Threshold: 0.5, Rate: true},
		{Name: "b", Metric: "m.y", Predicate: Below, Threshold: 100},
	} {
		back, err := ParseRule(r.String())
		if err != nil {
			t.Fatalf("reparsing %q: %v", r.String(), err)
		}
		if back != r {
			t.Errorf("round trip %q → %+v, want %+v", r.String(), back, r)
		}
	}
}
