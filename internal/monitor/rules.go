package monitor

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
	"unicode"

	"fairflow/internal/telemetry"
)

// Predicate is an alert rule's comparison direction.
type Predicate string

// Comparison directions.
const (
	Above Predicate = "above" // fire when value > threshold
	Below Predicate = "below" // fire when value < threshold
)

// Rule is a user-defined alert predicate over one metric. The metric's
// value is the sum across all label sets of the named counter, gauge, and
// histogram observation count. With Rate set, the rule fires on the
// metric's per-second rate of change instead of its level — measured
// between Health evaluations live, or over the journal's time span when
// evaluating a dump.
type Rule struct {
	Name      string    `json:"name"`
	Metric    string    `json:"metric"`
	Predicate Predicate `json:"predicate"`
	Threshold float64   `json:"threshold"`
	Rate      bool      `json:"rate,omitempty"`
}

// String renders the rule in ParseRule's grammar.
func (r Rule) String() string {
	metric := r.Metric
	if r.Rate {
		metric = "rate(" + metric + ")"
	}
	cmp := ">"
	if r.Predicate == Below {
		cmp = "<"
	}
	return fmt.Sprintf("%s: %s %s %g", r.Name, metric, cmp, r.Threshold)
}

// ParseRule parses the alert-rule grammar:
//
//	rule   := name ":" value cmp number
//	value  := metric | "rate(" metric ")"
//	cmp    := ">" | "<"
//
// Examples:
//
//	failure-burst: rate(savanna.runs_failed_total) > 0.05
//	queue-depth: hpcsim.jobs_queued > 100
//	starved: rate(savanna.runs_executed_total) < 0.001
func ParseRule(s string) (Rule, error) {
	name, expr, ok := strings.Cut(s, ":")
	if !ok {
		return Rule{}, fmt.Errorf("monitor: rule %q: missing name (want \"name: metric > threshold\")", s)
	}
	var r Rule
	r.Name = strings.TrimSpace(name)
	if r.Name == "" {
		return Rule{}, fmt.Errorf("monitor: rule %q: empty name", s)
	}

	expr = strings.TrimSpace(expr)
	var value, num string
	if lhs, rhs, ok := strings.Cut(expr, ">"); ok {
		r.Predicate, value, num = Above, lhs, rhs
	} else if lhs, rhs, ok := strings.Cut(expr, "<"); ok {
		r.Predicate, value, num = Below, lhs, rhs
	} else {
		return Rule{}, fmt.Errorf("monitor: rule %q: missing comparator (want > or <)", s)
	}

	r.Metric = strings.TrimSpace(value)
	if inner, ok := strings.CutPrefix(r.Metric, "rate("); ok {
		inner, ok = strings.CutSuffix(inner, ")")
		if !ok {
			return Rule{}, fmt.Errorf("monitor: rule %q: unclosed rate(", s)
		}
		r.Rate = true
		r.Metric = strings.TrimSpace(inner)
	}
	if r.Metric == "" {
		return Rule{}, fmt.Errorf("monitor: rule %q: empty metric", s)
	}
	if strings.IndexFunc(r.Metric, unicode.IsSpace) >= 0 {
		// "rate (x)" or "savanna runs" is a typo, and a metric name with
		// interior whitespace can never match a registered instrument —
		// reject it here instead of silently never firing.
		return Rule{}, fmt.Errorf("monitor: rule %q: metric %q contains whitespace", s, r.Metric)
	}

	th, err := strconv.ParseFloat(strings.TrimSpace(num), 64)
	if err != nil {
		return Rule{}, fmt.Errorf("monitor: rule %q: bad threshold: %v", s, err)
	}
	if math.IsNaN(th) || math.IsInf(th, 0) {
		// ParseFloat happily accepts "NaN" and "+Inf", but a NaN threshold
		// makes every comparison false and an infinite one makes the rule
		// dead weight — both are configuration mistakes.
		return Rule{}, fmt.Errorf("monitor: rule %q: threshold must be a finite number, got %q", s, strings.TrimSpace(num))
	}
	r.Threshold = th
	return r, nil
}

// ParseRules parses a list of rule strings, failing on the first bad one.
func ParseRules(specs []string) ([]Rule, error) {
	rules := make([]Rule, 0, len(specs))
	for _, s := range specs {
		r, err := ParseRule(s)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// RetryStormRule is the canned alert for a retry storm: the resilience
// layer's retry counter climbing faster than threshold per second means
// attempts are churning against a fault retrying cannot fix — a shared
// filesystem outage, a dead license server — and the backoff budget is
// being spent on the environment, not the science. Equivalent to the
// rule string "retry-storm: rate(savanna.retries_total) > <threshold>".
func RetryStormRule(threshold float64) Rule {
	return Rule{
		Name:      "retry-storm",
		Metric:    "savanna.retries_total",
		Predicate: Above,
		Threshold: threshold,
		Rate:      true,
	}
}

// DeadWorkerRule is the canned alert for the distributed plane: the
// coordinator's remote.workers_dead gauge counts workers whose lease
// expired without a clean leave and who have not rejoined. Any value
// above zero means the campaign is running degraded — the lost runs
// re-dispatch, but capacity is gone until a replacement connects (which
// decrements the gauge and resolves the alert). Equivalent to the rule
// string "dead-workers: remote.workers_dead > 0".
func DeadWorkerRule() Rule {
	return Rule{
		Name:      "dead-workers",
		Metric:    "remote.workers_dead",
		Predicate: Above,
		Threshold: 0,
	}
}

// CoordinatorFlapRule is the canned alert for coordinator churn: the
// remote.coordinator_takeovers_total counter increments once per fenced
// handover, so its rate climbing past threshold per second means the
// coordinator role is flapping — successive incarnations keep dying (OOM
// loop, bad host, two standbys fighting over a slow filesystem) and the
// campaign spends its time replaying journals instead of dispatching
// runs. A single planned failover never fires this; a crash loop does.
// Equivalent to the rule string
// "coordinator-flap: rate(remote.coordinator_takeovers_total) > <threshold>".
func CoordinatorFlapRule(threshold float64) Rule {
	return Rule{
		Name:      "coordinator-flap",
		Metric:    "remote.coordinator_takeovers_total",
		Predicate: Above,
		Threshold: threshold,
		Rate:      true,
	}
}

// exceeded reports whether value trips the rule's threshold.
func (r Rule) exceeded(value float64) bool {
	if r.Predicate == Below {
		return value < r.Threshold
	}
	return value > r.Threshold
}

// metricValue sums the named metric across a snapshot: every counter and
// gauge with that name (any label set) plus histogram observation counts.
func metricValue(snap telemetry.MetricsSnapshot, name string) (float64, bool) {
	var v float64
	found := false
	for _, c := range snap.Counters {
		if c.Name == name {
			v += float64(c.Value)
			found = true
		}
	}
	for _, g := range snap.Gauges {
		if g.Name == name {
			v += g.Value
			found = true
		}
	}
	for _, h := range snap.Histograms {
		if h.Name == name {
			v += float64(h.Count)
			found = true
		}
	}
	return v, found
}

// evalRuleLocked computes a rule's current value; callers hold m.mu. The
// bool result is false when the value cannot be computed yet (metric
// absent, or a rate rule's first live evaluation) — the rule then cannot
// fire, rather than firing on a meaningless zero.
func (m *Monitor) evalRuleLocked(r Rule, snap telemetry.MetricsSnapshot, now time.Time) (float64, bool) {
	level, found := metricValue(snap, r.Metric)
	if !found {
		return 0, false
	}
	if !r.Rate {
		return level, true
	}
	if m.snapOverride != nil {
		// Dump mode: average rate over the journal's time span.
		if m.dumpRateSpan <= 0 {
			return 0, false
		}
		return level / m.dumpRateSpan, true
	}
	if m.cfg.History != nil {
		// A history ring gives a true sliding-window rate: the delta between
		// the window's endpoints, not whatever happened to elapse between two
		// Health calls. Fall through to the between-eval estimate only while
		// the ring has too few samples to answer.
		if rate, ok := m.cfg.History.RateOver(r.Metric, m.rateWindow()); ok {
			return rate, true
		}
	}
	prev := m.rateLast[r.Metric]
	m.rateLast[r.Metric] = level
	if !m.rateHasBase {
		return 0, false
	}
	dt := now.Sub(m.rateLastAt).Seconds()
	if dt <= 0 {
		return 0, false
	}
	return (level - prev) / dt, true
}
