package monitor

import (
	"math"
	"strings"
	"testing"

	"fairflow/internal/telemetry"
	"fairflow/internal/telemetry/eventlog"
)

func TestFleetRollupSumsWorkerSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	bounds := []float64{0.1, 1, 10}
	for i, wk := range []string{"w1", "w2"} {
		qw := reg.Histogram(fleetQueueWaitMetric, bounds, "worker", wk)
		ex := reg.Histogram(fleetExecMetric, bounds, "worker", wk)
		for j := 0; j < 10; j++ {
			qw.Observe(0.05) // all in the first bucket
			ex.Observe(0.5 + float64(i))
		}
	}
	log := eventlog.NewLog()
	m := New(Config{Campaign: "c"}, reg, log)
	h := m.Health()
	if h.Fleet == nil {
		t.Fatal("Fleet nil with worker series present")
	}
	if h.Fleet.QueueWait == nil || h.Fleet.QueueWait.Count != 20 {
		t.Fatalf("queue wait = %+v, want both workers' 20 observations summed", h.Fleet.QueueWait)
	}
	if h.Fleet.Exec == nil || h.Fleet.Exec.Count != 20 {
		t.Fatalf("exec = %+v", h.Fleet.Exec)
	}
	// w1 executed at ~0.5s, w2 at ~1.5s → mean 1.0, p50 inside (0.1,1],
	// p95 inside (1,10].
	if math.Abs(h.Fleet.Exec.MeanSeconds-1.0) > 1e-9 {
		t.Fatalf("exec mean = %v, want 1.0", h.Fleet.Exec.MeanSeconds)
	}
	if p := h.Fleet.Exec.P50Seconds; p <= 0.1 || p > 1 {
		t.Fatalf("exec p50 = %v, want inside (0.1, 1]", p)
	}
	if p := h.Fleet.Exec.P95Seconds; p <= 1 || p > 10 {
		t.Fatalf("exec p95 = %v, want inside (1, 10]", p)
	}
	if p := h.Fleet.QueueWait.P95Seconds; p <= 0 || p > 0.1 {
		t.Fatalf("queue wait p95 = %v, want inside (0, 0.1]", p)
	}

	// The text report carries the rollup.
	var sb strings.Builder
	RenderText(&sb, h)
	if !strings.Contains(sb.String(), "fleet") {
		t.Fatalf("RenderText lacks fleet line:\n%s", sb.String())
	}
}

func TestFleetRollupAbsentWithoutWorkerSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Histogram("remote.run_seconds", nil).Observe(1) // coordinator-side, not fleet
	m := New(Config{Campaign: "c"}, reg, eventlog.NewLog())
	if h := m.Health(); h.Fleet != nil {
		t.Fatalf("Fleet = %+v, want nil with no remote_worker series", h.Fleet)
	}
}

func TestHistQuantileEdges(t *testing.T) {
	bounds := []float64{1, 2, 4}
	if got := histQuantile(nil, nil, 0, 0.5); got != 0 {
		t.Fatalf("empty bounds → %v", got)
	}
	if got := histQuantile(bounds, []uint64{0, 0, 0}, 0, 0.5); got != 0 {
		t.Fatalf("zero total → %v", got)
	}
	// All mass in one bucket interpolates inside it.
	if got := histQuantile(bounds, []uint64{0, 10, 0}, 0, 0.5); got <= 1 || got > 2 {
		t.Fatalf("p50 = %v, want inside (1, 2]", got)
	}
	// Observations beyond the last bound clamp to it, never invent values.
	if got := histQuantile(bounds, []uint64{0, 0, 0}, 5, 0.99); got != 4 {
		t.Fatalf("+Inf-only p99 = %v, want clamped to 4", got)
	}
}

// TestWorkerOriginEventsNotDoubleCounted pins the merge contract: run
// lifecycle events shipped from workers carry origin=worker and must not
// advance the monitor's counters — the coordinator's own Outcome-driven
// events already did.
func TestWorkerOriginEventsNotDoubleCounted(t *testing.T) {
	_, log, m := harness(t, Config{Campaign: "c", TotalRuns: 4})
	runEv(log, eventlog.RunSucceeded, "a") // coordinator's own event
	log.Append(eventlog.Info, eventlog.RunSucceeded, "", 0,
		telemetry.String("run", "a"), telemetry.String("origin", "worker"),
		telemetry.String("worker", "w1")) // the worker's shipped copy
	log.Append(eventlog.Error, eventlog.RunFailed, "boom", 0,
		telemetry.String("run", "b"), telemetry.String("origin", "worker"))
	h := m.Health()
	if h.Executed != 1 {
		t.Fatalf("executed = %d, want 1 (worker copy skipped)", h.Executed)
	}
	if h.Failed != 0 {
		t.Fatalf("failed = %d, want 0 (worker-origin failure skipped)", h.Failed)
	}
}

// TestFleetRollupSingleBucketWorker: a degenerate fleet whose every
// observation lands in one bucket still summarises sanely through the full
// rollup — quantiles interpolate inside that bucket, never outside it.
func TestFleetRollupSingleBucketWorker(t *testing.T) {
	reg := telemetry.NewRegistry()
	bounds := []float64{1, 10}
	ex := reg.Histogram(fleetExecMetric, bounds, "worker", "w1")
	for i := 0; i < 5; i++ {
		ex.Observe(0.5)
	}
	m := New(Config{Campaign: "c"}, reg, eventlog.NewLog())
	h := m.Health()
	if h.Fleet == nil || h.Fleet.Exec == nil {
		t.Fatalf("fleet = %+v, want exec rollup", h.Fleet)
	}
	e := h.Fleet.Exec
	if e.Count != 5 || math.Abs(e.MeanSeconds-0.5) > 1e-9 {
		t.Fatalf("exec = %+v, want count 5 mean 0.5", e)
	}
	if e.P50Seconds <= 0 || e.P50Seconds > 1 || e.P95Seconds <= 0 || e.P95Seconds > 1 {
		t.Fatalf("quantiles p50=%v p95=%v escaped the only occupied bucket (0,1]", e.P50Seconds, e.P95Seconds)
	}
	if h.Fleet.QueueWait != nil {
		t.Fatalf("queue wait = %+v, want nil (no series)", h.Fleet.QueueWait)
	}
}

// TestFleetRollupAllInOverflow: observations entirely past the last bound
// clamp quantiles to that bound — the rollup never invents resolution the
// buckets don't have, while the mean still reports the true magnitude.
func TestFleetRollupAllInOverflow(t *testing.T) {
	reg := telemetry.NewRegistry()
	bounds := []float64{1, 10}
	ex := reg.Histogram(fleetExecMetric, bounds, "worker", "w1")
	for i := 0; i < 4; i++ {
		ex.Observe(100)
	}
	m := New(Config{Campaign: "c"}, reg, eventlog.NewLog())
	h := m.Health()
	if h.Fleet == nil || h.Fleet.Exec == nil {
		t.Fatalf("fleet = %+v", h.Fleet)
	}
	e := h.Fleet.Exec
	if e.P50Seconds != 10 || e.P95Seconds != 10 {
		t.Fatalf("overflow quantiles p50=%v p95=%v, want clamped to 10", e.P50Seconds, e.P95Seconds)
	}
	if math.Abs(e.MeanSeconds-100) > 1e-9 {
		t.Fatalf("mean = %v, want 100 (sum is exact even when buckets saturate)", e.MeanSeconds)
	}
}

// TestFleetRollupSkipsEmptyAndMismatchedSeries: a registered-but-unobserved
// worker series must not pin the bucket layout or dilute the sum, and a
// series whose layout disagrees with the first seen is skipped rather than
// added nonsensically.
func TestFleetRollupSkipsEmptyAndMismatchedSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Histogram(fleetExecMetric, []float64{1, 10}, "worker", "idle") // never observed
	busy := reg.Histogram(fleetExecMetric, []float64{1, 10}, "worker", "busy")
	for i := 0; i < 4; i++ {
		busy.Observe(0.5)
	}
	odd := reg.Histogram(fleetExecMetric, []float64{5}, "worker", "odd") // mismatched layout
	for i := 0; i < 4; i++ {
		odd.Observe(0.5)
	}
	m := New(Config{Campaign: "c"}, reg, eventlog.NewLog())
	h := m.Health()
	if h.Fleet == nil || h.Fleet.Exec == nil {
		t.Fatalf("fleet = %+v", h.Fleet)
	}
	if h.Fleet.Exec.Count != 4 {
		t.Fatalf("count = %d, want 4 (exactly one layout's series folded)", h.Fleet.Exec.Count)
	}
	// All-empty series alone must yield no rollup at all.
	reg2 := telemetry.NewRegistry()
	reg2.Histogram(fleetExecMetric, []float64{1}, "worker", "w")
	m2 := New(Config{Campaign: "c"}, reg2, eventlog.NewLog())
	if h2 := m2.Health(); h2.Fleet != nil {
		t.Fatalf("fleet = %+v, want nil for unobserved series", h2.Fleet)
	}
}
