package monitor

import (
	"testing"
	"time"

	"fairflow/internal/telemetry"
	"fairflow/internal/telemetry/eventlog"
)

// dispatchEv emits a run.dispatched event binding a run to a worker.
func dispatchEv(log *eventlog.Log, run, worker string) {
	log.Append(eventlog.Info, eventlog.RunDispatched, "", 0,
		telemetry.String("run", run), telemetry.String("worker", worker))
}

func TestWorkerRollups(t *testing.T) {
	clk, log, m := harness(t, Config{Campaign: "dist", TotalRuns: 4})
	log.SetMinLevel(eventlog.Debug)

	log.Append(eventlog.Info, eventlog.CampaignStart, "", 1)
	log.Append(eventlog.Info, eventlog.WorkerJoin, "w1", 1,
		telemetry.String("worker", "w1"), telemetry.Int("slots", 2))
	log.Append(eventlog.Info, eventlog.WorkerJoin, "w2", 1,
		telemetry.String("worker", "w2"), telemetry.Int("slots", 1))

	dispatchEv(log, "a", "w1")
	dispatchEv(log, "b", "w1")
	dispatchEv(log, "c", "w2")

	h := m.Health()
	if h.WorkersLive != 2 || h.WorkersDead != 0 {
		t.Fatalf("live/dead = %d/%d, want 2/0", h.WorkersLive, h.WorkersDead)
	}
	if len(h.Workers) != 2 || h.Workers[0].Worker != "w1" || h.Workers[1].Worker != "w2" {
		t.Fatalf("workers = %+v, want sorted [w1 w2]", h.Workers)
	}
	if w1 := h.Workers[0]; w1.RunsInFlight != 2 || w1.Slots != 2 || !w1.Live {
		t.Errorf("w1 = %+v, want live, 2 slots, 2 in flight", w1)
	}
	if h.Running != 3 {
		t.Errorf("running = %d, want 3 (dispatch counts as run start)", h.Running)
	}

	// w1 finishes one run, then its lease expires mid-campaign: the other
	// run is reclaimed (run.lost) and re-dispatched to w2.
	clk.advance(2 * time.Second)
	runEv(log, eventlog.RunSucceeded, "a")
	log.Append(eventlog.Warn, eventlog.WorkerDead, "lease expired", 1,
		telemetry.String("worker", "w1"))
	log.Append(eventlog.Warn, eventlog.RunLost, "", 0,
		telemetry.String("run", "b"), telemetry.String("worker", "w1"))
	dispatchEv(log, "b", "w2")
	clk.advance(3 * time.Second)

	h = m.Health()
	if h.WorkersLive != 1 || h.WorkersDead != 1 {
		t.Fatalf("live/dead = %d/%d, want 1/1 after w1 died", h.WorkersLive, h.WorkersDead)
	}
	w1, w2 := h.Workers[0], h.Workers[1]
	if w1.Live || w1.RunsInFlight != 0 || w1.Completed != 1 || w1.Lost != 1 {
		t.Errorf("w1 = %+v, want dead, 0 in flight, 1 completed, 1 lost", w1)
	}
	if !w2.Live || w2.RunsInFlight != 2 {
		t.Errorf("w2 = %+v, want live with 2 in flight (b re-dispatched)", w2)
	}
	// w1's last sign of life was its reclaimed run 3 virtual seconds ago.
	if w1.LastSeenAgeSeconds != 3 {
		t.Errorf("w1 last seen age = %v, want 3", w1.LastSeenAgeSeconds)
	}

	// A heartbeat refreshes liveness without touching progress counters.
	log.Append(eventlog.Debug, eventlog.WorkerHeartbeat, "", 1,
		telemetry.String("worker", "w2"))
	if h = m.Health(); h.Workers[1].LastSeenAgeSeconds != 0 {
		t.Errorf("w2 last seen age = %v after heartbeat, want 0", h.Workers[1].LastSeenAgeSeconds)
	}

	// A replacement rejoining under the same name clears the dead flag.
	log.Append(eventlog.Info, eventlog.WorkerJoin, "w1", 1,
		telemetry.String("worker", "w1"), telemetry.Int("slots", 2))
	runEv(log, eventlog.RunSucceeded, "b")
	runEv(log, eventlog.RunSucceeded, "c")
	log.Append(eventlog.Info, eventlog.WorkerLeave, "w1", 1, telemetry.String("worker", "w1"))
	log.Append(eventlog.Info, eventlog.WorkerLeave, "w2", 1, telemetry.String("worker", "w2"))

	h = m.Health()
	if h.WorkersLive != 0 || h.WorkersDead != 0 {
		t.Errorf("live/dead = %d/%d after clean drain, want 0/0", h.WorkersLive, h.WorkersDead)
	}
	if w2 := h.Workers[1]; w2.Completed != 2 || w2.RunsInFlight != 0 {
		t.Errorf("w2 = %+v, want 2 completed, 0 in flight", w2)
	}
}

// TestDeadWorkerRuleFireResolve drives the canned distributed-plane alert
// through a full fire → resolve cycle against the coordinator's
// remote.workers_dead gauge, checking both the health report and the
// journaled transitions.
func TestDeadWorkerRuleFireResolve(t *testing.T) {
	clk := newSimClock()
	log := eventlog.NewLog()
	log.SetClock(clk)
	reg := telemetry.NewRegistry()
	dead := reg.Gauge("remote.workers_dead")

	m := New(Config{Campaign: "dist", Rules: []Rule{DeadWorkerRule()}}, reg, log)

	find := func(h CampaignHealth) AlertState {
		for _, a := range h.Alerts {
			if a.Alert == "dead-workers" {
				return a
			}
		}
		t.Fatalf("dead-workers alert missing: %+v", h.Alerts)
		return AlertState{}
	}

	if a := find(m.Health()); a.Firing {
		t.Fatalf("dead-workers firing with zero dead workers: %+v", a)
	}

	// A worker dies: the gauge goes to 1 and the alert fires.
	dead.Add(1)
	clk.advance(time.Second)
	if a := find(m.Health()); !a.Firing || a.Value != 1 {
		t.Fatalf("dead-workers = %+v, want firing at value 1", a)
	}

	// A replacement rejoins: the gauge drops back to 0 and the alert
	// resolves.
	dead.Add(-1)
	clk.advance(time.Second)
	if a := find(m.Health()); a.Firing {
		t.Fatalf("dead-workers still firing after rejoin: %+v", a)
	}

	var fired, resolved bool
	for _, ev := range log.Snapshot() {
		if ev.Attr("alert") != "dead-workers" {
			continue
		}
		switch ev.Type {
		case eventlog.AlertFiring:
			fired = true
		case eventlog.AlertResolved:
			resolved = true
		}
	}
	if !fired || !resolved {
		t.Errorf("journal transitions fired=%v resolved=%v, want both", fired, resolved)
	}
}
