package monitor

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fairflow/internal/telemetry"
	"fairflow/internal/telemetry/eventlog"
	"fairflow/internal/telemetry/history"
)

// simClock is a settable virtual clock shared by a test's log and monitor.
type simClock struct{ t time.Time }

func (c *simClock) Now() time.Time          { return c.t }
func (c *simClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newSimClock() *simClock { return &simClock{t: time.Unix(0, 0)} }

// harness wires a log + monitor on one virtual clock.
func harness(t *testing.T, cfg Config) (*simClock, *eventlog.Log, *Monitor) {
	t.Helper()
	clk := newSimClock()
	log := eventlog.NewLog()
	log.SetClock(clk)
	return clk, log, New(cfg, nil, log)
}

func runEv(log *eventlog.Log, typ, id string) {
	log.Append(eventlog.Info, typ, "", 0, telemetry.String("run", id))
}

func TestProgressCountsAndETA(t *testing.T) {
	clk, log, m := harness(t, Config{Campaign: "c", TotalRuns: 10})

	log.Append(eventlog.Info, eventlog.CampaignStart, "", 42)
	for i := 0; i < 4; i++ {
		id := string(rune('a' + i))
		runEv(log, eventlog.RunStart, id)
		clk.advance(10 * time.Second)
		runEv(log, eventlog.RunSucceeded, id)
	}
	runEv(log, eventlog.RunCached, "e")
	runEv(log, eventlog.RunFailed, "f")
	runEv(log, eventlog.RunStart, "g")

	h := m.Health()
	if h.Executed != 4 || h.Cached != 1 || h.Failed != 1 || h.Running != 1 {
		t.Errorf("counts: %+v", h)
	}
	if h.Completed != 6 || h.Progress != 0.6 {
		t.Errorf("completed %d progress %v, want 6 / 0.6", h.Completed, h.Progress)
	}
	// 6 completions in 40 virtual seconds → 0.15/s; 4 remaining → ETA 26.67s.
	if got := h.ThroughputPerSec; got != 0.15 {
		t.Errorf("throughput %v, want 0.15", got)
	}
	if !h.HasETA || h.ETASeconds < 26 || h.ETASeconds > 27 {
		t.Errorf("ETA %v (has=%v), want ≈26.7s", h.ETASeconds, h.HasETA)
	}
	if h.MedianRunSeconds != 10 {
		t.Errorf("median %v, want 10", h.MedianRunSeconds)
	}
}

func TestTotalRunsLearnedFromCampaignStart(t *testing.T) {
	_, log, m := harness(t, Config{})
	log.Append(eventlog.Info, eventlog.CampaignStart, "", 0, telemetry.Int("runs", 32))
	if h := m.Health(); h.TotalRuns != 32 {
		t.Errorf("TotalRuns = %d, want 32 (learned from event)", h.TotalRuns)
	}
}

func TestStragglerDetected(t *testing.T) {
	clk, log, m := harness(t, Config{TotalRuns: 5})
	// Straggler starts first and keeps running while siblings complete.
	runEv(log, eventlog.RunStart, "slow")
	for i := 0; i < 3; i++ {
		id := string(rune('a' + i))
		runEv(log, eventlog.RunStart, id)
		clk.advance(10 * time.Second)
		runEv(log, eventlog.RunSucceeded, id)
	}
	// slow has now been running 30s against a 10s median — at the default
	// factor 3 it is exactly at the edge; one more second tips it.
	if h := m.Health(); len(h.Stragglers) != 0 {
		t.Fatalf("straggler flagged at exactly k×median: %+v", h.Stragglers)
	}
	clk.advance(5 * time.Second)
	h := m.Health()
	if len(h.Stragglers) != 1 || h.Stragglers[0].Run != "slow" {
		t.Fatalf("stragglers = %+v, want [slow]", h.Stragglers)
	}
	if s := h.Stragglers[0]; s.ElapsedSeconds != 35 || s.MedianSeconds != 10 || s.Factor != 3.5 {
		t.Errorf("straggler detail: %+v", s)
	}
	// The transition was journaled, correlated and typed.
	var fired *eventlog.Event
	for _, ev := range log.Snapshot() {
		if ev.Type == eventlog.AlertFiring {
			fired = &ev
			break
		}
	}
	if fired == nil || fired.Attr("alert") != AlertStraggler {
		t.Fatalf("no straggler alert.firing event in journal")
	}

	// Resolving: the straggler completes → alert resolves on next eval.
	runEv(log, eventlog.RunSucceeded, "slow")
	h = m.Health()
	if len(h.Stragglers) != 0 {
		t.Errorf("straggler persists after completion")
	}
	resolved := false
	for _, ev := range log.Snapshot() {
		if ev.Type == eventlog.AlertResolved && ev.Attr("alert") == AlertStraggler {
			resolved = true
		}
	}
	if !resolved {
		t.Error("no alert.resolved event after straggler completed")
	}
}

func TestAllEqualDurationsNoFalseStraggler(t *testing.T) {
	clk, log, m := harness(t, Config{TotalRuns: 6})
	for i := 0; i < 5; i++ {
		id := string(rune('a' + i))
		runEv(log, eventlog.RunStart, id)
		clk.advance(10 * time.Second)
		runEv(log, eventlog.RunSucceeded, id)
	}
	// A sixth run in flight for exactly the common duration: not a straggler.
	runEv(log, eventlog.RunStart, "f")
	clk.advance(10 * time.Second)
	if h := m.Health(); len(h.Stragglers) != 0 {
		t.Errorf("false straggler on all-equal durations: %+v", h.Stragglers)
	}
}

func TestZeroCompletedNoETANoStragglerNoStall(t *testing.T) {
	clk, _, m := harness(t, Config{TotalRuns: 8, StallWindow: 30 * time.Second})
	// No events at all: no stall alarm however far the clock advances.
	clk.advance(10 * time.Minute)
	h := m.Health()
	if h.HasETA {
		t.Error("ETA claimed with zero completed runs")
	}
	if h.Stalled {
		t.Error("stall alarm before the first event")
	}
	if len(h.Stragglers) != 0 || h.ThroughputPerSec != 0 {
		t.Errorf("health from nothing: %+v", h)
	}
}

func TestStallWatchdogVirtualTime(t *testing.T) {
	clk, log, m := harness(t, Config{TotalRuns: 4, StallWindow: 300 * time.Second})
	runEv(log, eventlog.RunStart, "a")
	clk.advance(100 * time.Second)
	if h := m.Health(); h.Stalled {
		t.Fatal("stalled inside the window")
	}
	clk.advance(250 * time.Second) // 350s since last event
	h := m.Health()
	if !h.Stalled || h.StallSeconds != 350 {
		t.Fatalf("stall = %v (%vs), want true at 350 virtual seconds", h.Stalled, h.StallSeconds)
	}
	stallFiring := false
	for _, a := range h.Alerts {
		if a.Alert == AlertStall && a.Firing {
			stallFiring = true
		}
	}
	if !stallFiring {
		t.Error("stall alert not firing in report")
	}

	// Progress resumes → resolved; alert events must not feed the watchdog
	// (the firing event itself happened at +350s, but it is not progress).
	runEv(log, eventlog.RunSucceeded, "a")
	h = m.Health()
	if h.Stalled {
		t.Error("stall persists after progress resumed")
	}

	// Campaign done → watchdog off for good.
	log.Append(eventlog.Info, eventlog.CampaignDone, "", 0)
	clk.advance(time.Hour)
	if h := m.Health(); h.Stalled {
		t.Error("stall alarm after campaign.done")
	}
}

func TestAlertEventsDoNotResetWatchdog(t *testing.T) {
	clk, log, m := harness(t, Config{StallWindow: 100 * time.Second})
	runEv(log, eventlog.RunStart, "a")
	clk.advance(150 * time.Second)
	if h := m.Health(); !h.Stalled {
		t.Fatal("expected stall")
	}
	// The alert.firing event was just journaled at +150s. If it counted as
	// progress the watchdog would reset; it must still be stalled later.
	clk.advance(50 * time.Second)
	h := m.Health()
	if !h.Stalled || h.StallSeconds != 200 {
		t.Errorf("stall %v at %vs, want 200s (alert event reset the watchdog?)", h.Stalled, h.StallSeconds)
	}
}

func TestRuleThresholdAndRate(t *testing.T) {
	clk := newSimClock()
	log := eventlog.NewLog()
	log.SetClock(clk)
	reg := telemetry.NewRegistry()
	failures := reg.Counter("savanna.runs_failed_total")

	m := New(Config{
		Rules: []Rule{
			{Name: "too-many-failures", Metric: "savanna.runs_failed_total", Predicate: Above, Threshold: 3},
			{Name: "failure-burst", Metric: "savanna.runs_failed_total", Predicate: Above, Threshold: 0.5, Rate: true},
		},
	}, reg, log)

	alertByName := func(h CampaignHealth, name string) AlertState {
		for _, a := range h.Alerts {
			if a.Alert == name {
				return a
			}
		}
		t.Fatalf("alert %q missing from report", name)
		return AlertState{}
	}

	// First eval establishes the rate base; nothing fires.
	h := m.Health()
	if alertByName(h, "too-many-failures").Firing || alertByName(h, "failure-burst").Firing {
		t.Fatal("alerts firing on first evaluation")
	}

	// 2 failures in 10s: rate 0.2/s — under both thresholds.
	failures.Add(2)
	clk.advance(10 * time.Second)
	h = m.Health()
	if alertByName(h, "too-many-failures").Firing {
		t.Error("threshold rule fired at 2 ≤ 3")
	}
	if a := alertByName(h, "failure-burst"); a.Firing {
		t.Errorf("rate rule fired at %v ≤ 0.5", a.Value)
	}

	// Burst: 8 more failures in 10s → level 10 > 3, rate 0.8 > 0.5.
	failures.Add(8)
	clk.advance(10 * time.Second)
	h = m.Health()
	if a := alertByName(h, "too-many-failures"); !a.Firing || a.Value != 10 {
		t.Errorf("threshold rule: %+v, want firing at 10", a)
	}
	if a := alertByName(h, "failure-burst"); !a.Firing || a.Value != 0.8 {
		t.Errorf("rate rule: %+v, want firing at 0.8", a)
	}

	// Quiet 10s: rate falls to 0 → burst resolves, level alert stays.
	clk.advance(10 * time.Second)
	h = m.Health()
	if !alertByName(h, "too-many-failures").Firing {
		t.Error("level alert resolved while level still exceeds")
	}
	if alertByName(h, "failure-burst").Firing {
		t.Error("rate alert still firing after the burst ended")
	}

	// Journal carries the full firing/resolved story.
	var types []string
	for _, ev := range log.Snapshot() {
		types = append(types, ev.Type+":"+ev.Attr("alert"))
	}
	want := []string{
		"alert.firing:too-many-failures",
		"alert.firing:failure-burst",
		"alert.resolved:failure-burst",
	}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Errorf("journal transitions %v, want %v", types, want)
	}
}

func TestRuleMissingMetricNeverFires(t *testing.T) {
	_, log, _ := harness(t, Config{})
	reg := telemetry.NewRegistry()
	m := New(Config{Rules: []Rule{
		{Name: "ghost", Metric: "no.such_metric", Predicate: Below, Threshold: 100},
	}}, reg, log)
	if a := m.Health().Alerts; len(a) != 3 || a[2].Firing {
		t.Errorf("rule over a missing metric fired: %+v", a)
	}
}

func TestHandlerServesHealthJSON(t *testing.T) {
	_, log, m := harness(t, Config{Campaign: "gwas", TotalRuns: 2})
	runEv(log, eventlog.RunStart, "a")
	runEv(log, eventlog.RunSucceeded, "a")

	rr := httptest.NewRecorder()
	m.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/health.json", nil))
	var h CampaignHealth
	if err := json.Unmarshal(rr.Body.Bytes(), &h); err != nil {
		t.Fatalf("health.json is not valid JSON: %v", err)
	}
	if h.Campaign != "gwas" || h.Executed != 1 || h.TotalRuns != 2 {
		t.Errorf("served health: %+v", h)
	}
}

func TestFromDumpReplaysJournal(t *testing.T) {
	clk := newSimClock()
	log := eventlog.NewLog()
	log.SetClock(clk)
	reg := telemetry.NewRegistry()
	reg.Counter("savanna.runs_failed_total").Add(5)

	log.Append(eventlog.Info, eventlog.CampaignStart, "", 0, telemetry.Int("runs", 10))
	runEv(log, eventlog.RunStart, "slow")
	for i := 0; i < 3; i++ {
		id := string(rune('a' + i))
		runEv(log, eventlog.RunStart, id)
		clk.advance(10 * time.Second)
		runEv(log, eventlog.RunSucceeded, id)
	}
	clk.advance(20 * time.Second)
	runEv(log, eventlog.RunFailed, "x") // final event at +50s

	d := eventlog.Collect(reg, nil, log)
	h := FromDump(d, Config{Rules: []Rule{
		{Name: "failure-burst", Metric: "savanna.runs_failed_total", Predicate: Above, Threshold: 0.05, Rate: true},
	}})

	if h.TotalRuns != 10 || h.Executed != 3 || h.Failed != 1 || h.Running != 1 {
		t.Errorf("replayed counts: %+v", h)
	}
	// "slow" has been in flight the whole 50s journal vs a 10s median.
	if len(h.Stragglers) != 1 || h.Stragglers[0].Run != "slow" {
		t.Errorf("dump stragglers: %+v", h.Stragglers)
	}
	// Rate over the journal span: 5 failures / 50s = 0.1 > 0.05 → firing.
	var burst *AlertState
	for i := range h.Alerts {
		if h.Alerts[i].Alert == "failure-burst" {
			burst = &h.Alerts[i]
		}
	}
	if burst == nil || !burst.Firing || burst.Value != 0.1 {
		t.Errorf("dump rate alert: %+v, want firing at 0.1", burst)
	}
	// Report is generated as of the final event's virtual time.
	if !h.GeneratedAt.Equal(time.Unix(50, 0)) {
		t.Errorf("GeneratedAt %v, want +50s", h.GeneratedAt)
	}
}

func TestRenderTextSmoke(t *testing.T) {
	var b strings.Builder
	RenderText(&b, CampaignHealth{
		Campaign: "gwas", TotalRuns: 10, Completed: 6, Executed: 4, Cached: 1,
		Failed: 1, Running: 2, Progress: 0.6, ThroughputPerSec: 0.15,
		HasETA: true, ETASeconds: 26.7, MedianRunSeconds: 10,
		Stragglers: []Straggler{{Run: "g/s/run-00003", ElapsedSeconds: 35, MedianSeconds: 10, Factor: 3.5}},
		Stalled:    true, StallSeconds: 350,
		WorkersLive: 1, WorkersDead: 1,
		Workers: []WorkerHealth{
			{Worker: "w1", Live: true, Slots: 2, RunsInFlight: 2, Completed: 3, LastSeenAgeSeconds: 4},
			{Worker: "w2", Slots: 2, Completed: 1, Lost: 1},
		},
		Alerts: []AlertState{{Alert: "failure-burst", Firing: true, Value: 0.8, Threshold: 0.5}},
	})
	out := b.String()
	for _, want := range []string{
		"campaign  gwas", "6/10", "60%", "ETA", "straggler g/s/run-00003",
		"3.5×", "STALLED", "failure-burst",
		"workers   1 live · 1 dead", "w1", "2 in flight · 3 done", "seen 4s ago",
		"w2", "gone", "1 lost",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestRateRuleUsesHistoryWindow: with a history ring configured, rate()
// rules read a true sliding-window rate — computable on the very first
// Health call (no between-eval base needed) and decaying as the burst
// leaves the window, independent of when Health happened to be called.
func TestRateRuleUsesHistoryWindow(t *testing.T) {
	clk := newSimClock()
	log := eventlog.NewLog()
	log.SetClock(clk)
	reg := telemetry.NewRegistry()
	failures := reg.Counter("savanna.runs_failed_total")
	ring := history.New(reg, 0)
	ring.SetClock(clk)
	m := New(Config{
		Rules: []Rule{
			{Name: "burst", Metric: "savanna.runs_failed_total", Predicate: Above, Threshold: 0.5, Rate: true},
		},
		History:    ring,
		RateWindow: 30 * time.Second,
	}, reg, log)

	burst := func(h CampaignHealth) AlertState {
		for _, a := range h.Alerts {
			if a.Alert == "burst" {
				return a
			}
		}
		t.Fatal("burst alert missing")
		return AlertState{}
	}

	ring.Sample() // t=0, 0 failures
	clk.advance(10 * time.Second)
	failures.Add(8)
	ring.Sample() // t=10, 8 failures

	// First Health call: the between-eval estimator would have no base yet,
	// but the ring already holds the burst → 0.8/s, firing.
	h := m.Health()
	if a := burst(h); !a.Firing || a.Value != 0.8 {
		t.Fatalf("first eval with history: %+v, want firing at 0.8", a)
	}

	// 30 quiet seconds roll the burst out of the window → rate 0, resolved.
	for i := 0; i < 3; i++ {
		clk.advance(10 * time.Second)
		ring.Sample()
	}
	h = m.Health()
	if a := burst(h); a.Firing || a.Value != 0 {
		t.Fatalf("after quiet window: %+v, want resolved at 0", a)
	}
}
