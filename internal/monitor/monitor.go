// Package monitor turns the passive telemetry signals — the metrics
// registry and the event journal — into an actionable live view of a
// running campaign: progress, throughput, an ETA from the completion rate,
// straggler detection against the median sibling duration, a stall
// watchdog, and user-defined alert rules over any metric. Alert state
// transitions (firing/resolved) are recorded back into the event log,
// correlated to the campaign span, so the operational story and the causal
// trace are one artifact.
//
// The monitor is clock-agnostic: it reads time from its configured clock,
// falling back to the event log's clock, so a campaign simulated in
// virtual time (internal/hpcsim) is monitored in virtual time — a stall is
// "no progress for 300 simulated seconds", not wall seconds.
package monitor

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"fairflow/internal/telemetry"
	"fairflow/internal/telemetry/eventlog"
	"fairflow/internal/telemetry/history"
)

// Config shapes a Monitor.
type Config struct {
	// Campaign labels the health report.
	Campaign string
	// TotalRuns is the campaign's planned run count, used for progress and
	// ETA. Zero means unknown (learned from a campaign.start event's "runs"
	// attribute when present).
	TotalRuns int
	// StragglerFactor flags a running run as a straggler when its elapsed
	// time exceeds factor × median(completed run durations). Default 3.
	StragglerFactor float64
	// MinCompleted is the number of completed runs required before the
	// median is trusted for straggler detection and ETA. Default 3.
	MinCompleted int
	// StallWindow fires the stall alert when no event progress is observed
	// for this long. Zero disables the watchdog. The window is measured on
	// the monitor's clock — virtual time under a simulation.
	StallWindow time.Duration
	// Clock overrides the time source (defaults to the event log's clock).
	Clock telemetry.Clock
	// Rules are user-defined alert predicates evaluated on every Health call.
	Rules []Rule
	// History, when set, backs rate() rules with true sliding-window rates
	// over the ring's samples instead of deltas between consecutive Health
	// evaluations (whose spacing is whatever the caller's poll loop does).
	History *history.Ring
	// RateWindow is the sliding window for History-backed rate() rules.
	// Default 30s.
	RateWindow time.Duration
}

// Straggler is a running run whose elapsed time dwarfs its completed
// siblings'.
type Straggler struct {
	Run            string  `json:"run"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	MedianSeconds  float64 `json:"median_seconds"`
	Factor         float64 `json:"factor"`
}

// WorkerHealth is one worker's rollup in a distributed campaign, folded
// from the coordinator's worker-lifecycle and run-dispatch events.
type WorkerHealth struct {
	Worker string `json:"worker"`
	// Live reports whether the worker currently holds a lease.
	Live  bool `json:"live"`
	Slots int  `json:"slots,omitempty"`
	// RunsInFlight counts runs dispatched to this worker with no terminal
	// outcome yet.
	RunsInFlight int `json:"runs_in_flight"`
	// Completed counts terminal outcomes this worker reported.
	Completed int `json:"completed"`
	// Lost counts runs reclaimed from this worker by lease expiry.
	Lost int `json:"lost,omitempty"`
	// LastSeenAgeSeconds is the age of the worker's last sign of life
	// (heartbeat, dispatch, result) at evaluation time.
	LastSeenAgeSeconds float64 `json:"last_seen_age_seconds,omitempty"`
}

// AlertState is the current state of one alert (built-in or rule-defined).
type AlertState struct {
	Alert     string    `json:"alert"`
	Firing    bool      `json:"firing"`
	Value     float64   `json:"value"`
	Threshold float64   `json:"threshold"`
	Since     time.Time `json:"since,omitempty"`
}

// CampaignHealth is one evaluation of a campaign's live state.
type CampaignHealth struct {
	Campaign    string    `json:"campaign,omitempty"`
	GeneratedAt time.Time `json:"generated_at"`

	TotalRuns int `json:"total_runs,omitempty"`
	Running   int `json:"running"`
	Executed  int `json:"executed"`
	Cached    int `json:"cached"`
	Failed    int `json:"failed"`
	Killed    int `json:"killed"`
	// Retries counts failed attempts the resilience layer re-queued —
	// churn that progress counters alone hide.
	Retries int `json:"retries,omitempty"`
	// Quarantined counts runs terminally side-lined by the sweep-point
	// circuit breaker.
	Quarantined int `json:"quarantined,omitempty"`
	// Aborted is set once the campaign's stop condition trips (max failure
	// fraction); remaining runs will be skipped, so the ETA is void.
	Aborted bool `json:"aborted,omitempty"`
	// Completed counts terminal outcomes: executed + cached + failed +
	// quarantined.
	Completed int `json:"completed"`
	// Progress is Completed/TotalRuns (0 when TotalRuns is unknown).
	Progress float64 `json:"progress"`

	ThroughputPerSec float64 `json:"throughput_per_sec"`
	HasETA           bool    `json:"has_eta"`
	ETASeconds       float64 `json:"eta_seconds,omitempty"`

	MedianRunSeconds float64     `json:"median_run_seconds,omitempty"`
	Stragglers       []Straggler `json:"stragglers,omitempty"`

	Stalled      bool    `json:"stalled"`
	StallSeconds float64 `json:"stall_seconds,omitempty"`

	// WorkersLive / WorkersDead and Workers appear only for distributed
	// campaigns (remote engine coordinators emit the worker events).
	WorkersLive int            `json:"workers_live,omitempty"`
	WorkersDead int            `json:"workers_dead,omitempty"`
	Workers     []WorkerHealth `json:"workers,omitempty"`

	// Fleet aggregates the workers' merged execution histograms (queue wait
	// and execution time across every worker) — present only when worker
	// telemetry has been merged into the registry.
	Fleet *FleetHealth `json:"fleet,omitempty"`

	Alerts []AlertState `json:"alerts,omitempty"`
}

// Built-in alert names.
const (
	AlertStraggler = "straggler"
	AlertStall     = "stall"
)

// runState tracks one in-flight run.
type runState struct {
	start time.Time
	span  int64
}

// workerTrack is one worker's folded lifecycle state.
type workerTrack struct {
	live      bool
	dead      bool // died at least once and has not rejoined
	slots     int
	inFlight  int
	completed int
	lost      int
	lastSeen  time.Time
}

// alertTrack is an alert's persisted firing state between evaluations.
type alertTrack struct {
	firing bool
	since  time.Time
}

// Monitor consumes the event stream (via Subscribe) and the metrics
// registry to compute CampaignHealth on demand. Safe for concurrent use.
type Monitor struct {
	cfg Config
	reg *telemetry.Registry
	log *eventlog.Log

	mu           sync.Mutex
	sawEvent     bool
	firstEvent   time.Time
	lastProgress time.Time
	campaignSpan int64
	done         bool
	totalRuns    int
	runs         map[string]runState
	workers      map[string]*workerTrack
	runWorker    map[string]string // in-flight run → assigned worker
	durs         []float64         // completed executed durations, seconds
	executed     int
	cached       int
	failed       int
	killed       int
	retries      int
	quarantined  int
	aborted      bool
	alerts       map[string]*alertTrack
	rateLast     map[string]float64
	rateLastAt   time.Time
	rateHasBase  bool

	// dump mode: frozen metrics + rate basis from the journal's time span.
	snapOverride *telemetry.MetricsSnapshot
	dumpRateSpan float64
}

// New builds a monitor over reg and log (either may be nil) and subscribes
// to the log's event stream. Health may be called at any time.
func New(cfg Config, reg *telemetry.Registry, log *eventlog.Log) *Monitor {
	if cfg.StragglerFactor <= 0 {
		cfg.StragglerFactor = 3
	}
	if cfg.MinCompleted <= 0 {
		cfg.MinCompleted = 3
	}
	m := &Monitor{
		cfg:       cfg,
		reg:       reg,
		log:       log,
		totalRuns: cfg.TotalRuns,
		runs:      map[string]runState{},
		workers:   map[string]*workerTrack{},
		runWorker: map[string]string{},
		alerts:    map[string]*alertTrack{},
		rateLast:  map[string]float64{},
	}
	log.Subscribe(m.observe)
	return m
}

// now reads the monitor's clock: config override, then the event log's
// clock, then wall time.
func (m *Monitor) now() time.Time {
	if m.cfg.Clock != nil {
		return m.cfg.Clock.Now()
	}
	return m.log.Now()
}

// rateWindow is the sliding window for History-backed rate() rules.
func (m *Monitor) rateWindow() time.Duration {
	if m.cfg.RateWindow > 0 {
		return m.cfg.RateWindow
	}
	return 30 * time.Second
}

// unitID extracts the work-unit identifier from an event — savanna runs
// and tabular tasks are both units of campaign progress.
func unitID(ev eventlog.Event) string {
	if id := ev.Attr("run"); id != "" {
		return id
	}
	return ev.Attr("task")
}

// observe folds one event into the monitor's state. Self-generated alert
// events are ignored: an alert firing is not campaign progress and must
// not reset the stall watchdog.
func (m *Monitor) observe(ev eventlog.Event) {
	switch ev.Type {
	case eventlog.AlertFiring, eventlog.AlertResolved:
		return
	}
	// Worker-shipped events (merged into this log by the remote engine's
	// telemetry sync, tagged origin=worker) are the worker's own view of
	// runs the coordinator already accounts for via Outcome reports —
	// folding them again would double count progress. The fleet-wide view
	// of worker execution comes from the merged metrics instead (Fleet).
	if ev.Attr("origin") == "worker" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.sawEvent {
		m.sawEvent = true
		m.firstEvent = ev.Time
	}
	m.lastProgress = ev.Time

	switch ev.Type {
	case eventlog.CampaignStart:
		m.campaignSpan = ev.Span
		m.done = false
		if m.cfg.Campaign == "" {
			if name := ev.Attr("campaign"); name != "" {
				m.cfg.Campaign = name
			} else if ev.Msg != "" {
				m.cfg.Campaign = ev.Msg
			}
		}
		if m.totalRuns == 0 {
			if n, err := strconv.Atoi(ev.Attr("runs")); err == nil {
				m.totalRuns = n
			}
		}
	case eventlog.CampaignDone:
		m.done = true
	case eventlog.RunStart, eventlog.TaskStart:
		if id := unitID(ev); id != "" {
			m.runs[id] = runState{start: ev.Time, span: ev.Span}
		}
	case eventlog.RunDispatched:
		// A dispatch is the run's start from the campaign's point of view:
		// queue wait on a slow worker counts toward straggler detection. It
		// also binds the run to a worker for the per-worker rollups.
		if id := unitID(ev); id != "" {
			m.runs[id] = runState{start: ev.Time, span: ev.Span}
			if w := ev.Attr("worker"); w != "" {
				m.dispatchLocked(id, w, ev.Time)
			}
		}
	case eventlog.RunLost:
		// A dead worker's lease was reclaimed; the run requeues without
		// consuming its attempt budget (like run.killed).
		if id := unitID(ev); id != "" {
			delete(m.runs, id)
			m.settleLocked(id, ev.Time, func(wt *workerTrack) { wt.lost++ })
		}
	case eventlog.RunSucceeded, eventlog.TaskDone:
		if id := unitID(ev); id != "" {
			if st, ok := m.runs[id]; ok {
				m.durs = append(m.durs, ev.Time.Sub(st.start).Seconds())
				delete(m.runs, id)
			}
			m.settleLocked(id, ev.Time, func(wt *workerTrack) { wt.completed++ })
		}
		m.executed++
	case eventlog.RunCached, eventlog.TaskCached:
		// Cached completions are near-instant; folding them into the
		// duration sample would drag the median to ~0 and flag every real
		// run as a straggler.
		if id := unitID(ev); id != "" {
			delete(m.runs, id)
			m.settleLocked(id, ev.Time, func(wt *workerTrack) { wt.completed++ })
		}
		m.cached++
	case eventlog.RunFailed, eventlog.TaskFailed:
		if id := unitID(ev); id != "" {
			delete(m.runs, id)
			m.settleLocked(id, ev.Time, func(wt *workerTrack) { wt.completed++ })
		}
		m.failed++
	case eventlog.RunKilled:
		// Killed runs requeue — not terminal, but no longer running.
		if id := unitID(ev); id != "" {
			delete(m.runs, id)
			m.settleLocked(id, ev.Time, nil)
		}
		m.killed++
	case eventlog.RunRetry:
		// A retry is churn, not completion: the run stays in-flight (its
		// original start time keeps accruing toward straggler detection,
		// backoff included — a run stuck in a retry loop IS a straggler).
		m.retries++
	case eventlog.RunQuarantined:
		// Quarantine is terminal: the circuit breaker side-lined the sweep
		// point, no further attempts follow.
		if id := unitID(ev); id != "" {
			delete(m.runs, id)
			m.settleLocked(id, ev.Time, func(wt *workerTrack) { wt.completed++ })
		}
		m.quarantined++
	case eventlog.CampaignAborted:
		m.aborted = true
	case eventlog.WorkerJoin:
		if name := ev.Attr("worker"); name != "" {
			wt := m.workerLocked(name)
			wt.live, wt.dead = true, false
			wt.lastSeen = ev.Time
			if n, err := strconv.Atoi(ev.Attr("slots")); err == nil {
				wt.slots = n
			}
		}
	case eventlog.WorkerHeartbeat:
		if name := ev.Attr("worker"); name != "" {
			m.workerLocked(name).lastSeen = ev.Time
		}
	case eventlog.WorkerDead:
		if name := ev.Attr("worker"); name != "" {
			wt := m.workerLocked(name)
			wt.live, wt.dead = false, true
		}
	case eventlog.WorkerLeave:
		// Clean departure after drain — gone, but not a failure.
		if name := ev.Attr("worker"); name != "" {
			m.workerLocked(name).live = false
		}
	}
}

// workerLocked returns (creating if needed) the rollup for one worker.
func (m *Monitor) workerLocked(name string) *workerTrack {
	wt := m.workers[name]
	if wt == nil {
		wt = &workerTrack{}
		m.workers[name] = wt
	}
	return wt
}

// dispatchLocked binds an in-flight run to the worker it was handed to.
// Re-dispatch after a lease expiry moves the binding; the old worker's
// in-flight count was already settled by the run.lost event.
func (m *Monitor) dispatchLocked(id, worker string, at time.Time) {
	if prev, ok := m.runWorker[id]; ok {
		if prev == worker {
			m.workerLocked(worker).lastSeen = at
			return
		}
		if wt := m.workers[prev]; wt != nil && wt.inFlight > 0 {
			wt.inFlight--
		}
	}
	m.runWorker[id] = worker
	wt := m.workerLocked(worker)
	wt.inFlight++
	wt.lastSeen = at
}

// settleLocked clears a run's worker binding when it stops being in
// flight; outcome (may be nil) folds the result into the worker's tally.
func (m *Monitor) settleLocked(id string, at time.Time, outcome func(*workerTrack)) {
	worker, ok := m.runWorker[id]
	if !ok {
		return
	}
	delete(m.runWorker, id)
	wt := m.workerLocked(worker)
	if wt.inFlight > 0 {
		wt.inFlight--
	}
	wt.lastSeen = at
	if outcome != nil {
		outcome(wt)
	}
}

// snapshot reads the metrics the alert rules evaluate over.
func (m *Monitor) snapshot() telemetry.MetricsSnapshot {
	if m.snapOverride != nil {
		return *m.snapOverride
	}
	return m.reg.Snapshot()
}

// median of a sample (0 when empty). Sorts a copy.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// alertEvent is a pending firing/resolved journal record.
type alertEvent struct {
	firing bool
	state  AlertState
}

// Health evaluates the campaign's current state. Alert transitions since
// the previous evaluation are appended to the event log (correlated to the
// campaign span) before the report is returned.
func (m *Monitor) Health() CampaignHealth {
	now := m.now()
	snap := m.snapshot()

	m.mu.Lock()
	h := CampaignHealth{
		Campaign:    m.cfg.Campaign,
		GeneratedAt: now,
		TotalRuns:   m.totalRuns,
		Running:     len(m.runs),
		Executed:    m.executed,
		Cached:      m.cached,
		Failed:      m.failed,
		Killed:      m.killed,
		Retries:     m.retries,
		Quarantined: m.quarantined,
		Aborted:     m.aborted,
	}
	h.Completed = h.Executed + h.Cached + h.Failed + h.Quarantined
	if h.TotalRuns > 0 {
		h.Progress = float64(h.Completed) / float64(h.TotalRuns)
	}

	// Throughput and ETA from the completion rate since the first event.
	if m.sawEvent {
		if elapsed := now.Sub(m.firstEvent).Seconds(); elapsed > 0 && h.Completed > 0 {
			h.ThroughputPerSec = float64(h.Completed) / elapsed
		}
	}
	if remaining := h.TotalRuns - h.Completed; h.TotalRuns > 0 && !h.Aborted && h.Completed >= m.cfg.MinCompleted && h.ThroughputPerSec > 0 {
		if remaining > 0 {
			h.HasETA = true
			h.ETASeconds = float64(remaining) / h.ThroughputPerSec
		} else {
			h.HasETA = true // done: ETA zero
		}
	}

	// Straggler detection: running runs measured against the median of
	// completed executed siblings. Needs a trustworthy sample.
	h.MedianRunSeconds = median(m.durs)
	if len(m.durs) >= m.cfg.MinCompleted && h.MedianRunSeconds > 0 {
		for id, st := range m.runs {
			elapsed := now.Sub(st.start).Seconds()
			if elapsed > m.cfg.StragglerFactor*h.MedianRunSeconds {
				h.Stragglers = append(h.Stragglers, Straggler{
					Run:            id,
					ElapsedSeconds: elapsed,
					MedianSeconds:  h.MedianRunSeconds,
					Factor:         elapsed / h.MedianRunSeconds,
				})
			}
		}
		sort.Slice(h.Stragglers, func(i, j int) bool {
			return h.Stragglers[i].Run < h.Stragglers[j].Run
		})
	}

	// Per-worker rollups (distributed campaigns only): sorted by name so
	// the report is deterministic.
	if len(m.workers) > 0 {
		names := make([]string, 0, len(m.workers))
		for name := range m.workers {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			wt := m.workers[name]
			wh := WorkerHealth{
				Worker:       name,
				Live:         wt.live,
				Slots:        wt.slots,
				RunsInFlight: wt.inFlight,
				Completed:    wt.completed,
				Lost:         wt.lost,
			}
			if !wt.lastSeen.IsZero() {
				if age := now.Sub(wt.lastSeen).Seconds(); age > 0 {
					wh.LastSeenAgeSeconds = age
				}
			}
			if wt.live {
				h.WorkersLive++
			} else if wt.dead {
				h.WorkersDead++
			}
			h.Workers = append(h.Workers, wh)
		}
	}

	h.Fleet = fleetFromSnapshot(snap)

	// Stall watchdog: no event progress inside the window. Never alarms
	// before the first event or after the campaign finished.
	if m.cfg.StallWindow > 0 && m.sawEvent && !m.done {
		if idle := now.Sub(m.lastProgress); idle >= m.cfg.StallWindow {
			h.Stalled = true
			h.StallSeconds = idle.Seconds()
		}
	}

	// Alerts: the two built-ins plus the configured rules, each folded
	// through its previous firing state to find transitions.
	var pending []alertEvent
	record := func(name string, firing bool, value, threshold float64) {
		st := m.alerts[name]
		if st == nil {
			st = &alertTrack{}
			m.alerts[name] = st
		}
		if firing && !st.firing {
			st.firing = true
			st.since = now
			pending = append(pending, alertEvent{true, AlertState{Alert: name, Firing: true, Value: value, Threshold: threshold, Since: now}})
		} else if !firing && st.firing {
			st.firing = false
			pending = append(pending, alertEvent{false, AlertState{Alert: name, Firing: false, Value: value, Threshold: threshold, Since: now}})
			st.since = time.Time{}
		}
		as := AlertState{Alert: name, Firing: st.firing, Value: value, Threshold: threshold, Since: st.since}
		h.Alerts = append(h.Alerts, as)
	}

	record(AlertStraggler, len(h.Stragglers) > 0, float64(len(h.Stragglers)), 0)
	record(AlertStall, h.Stalled, h.StallSeconds, m.cfg.StallWindow.Seconds())

	for _, r := range m.cfg.Rules {
		value, ok := m.evalRuleLocked(r, snap, now)
		firing := ok && r.exceeded(value)
		record(r.Name, firing, value, r.Threshold)
	}
	if len(m.cfg.Rules) > 0 && m.snapOverride == nil {
		m.rateLastAt = now
		m.rateHasBase = true
	}
	campaignSpan := m.campaignSpan
	m.mu.Unlock()

	// Journal the transitions outside the lock: Append notifies
	// subscribers (including this monitor's observe) synchronously.
	for _, p := range pending {
		typ, lv := eventlog.AlertResolved, eventlog.Info
		if p.firing {
			typ, lv = eventlog.AlertFiring, eventlog.Warn
		}
		m.log.Append(lv, typ, p.state.Alert, campaignSpan,
			telemetry.String("alert", p.state.Alert),
			telemetry.Float("value", p.state.Value),
			telemetry.Float("threshold", p.state.Threshold))
	}
	return h
}

// Handler serves the current health report as /health.json.
func (m *Monitor) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(m.Health())
	})
}

// FromDump evaluates campaign health post-hoc from a dump file: the
// journal is replayed through the same state machine, rule rates are
// computed over the journal's time span, and the report is generated as of
// the final event. No events are emitted.
func FromDump(d eventlog.Dump, cfg Config) CampaignHealth {
	m := New(cfg, nil, nil)
	m.snapOverride = &d.Metrics
	var last time.Time
	for _, ev := range d.Events {
		m.observe(ev)
		last = ev.Time
	}
	if m.sawEvent {
		m.dumpRateSpan = last.Sub(m.firstEvent).Seconds()
		m.cfg.Clock = telemetry.ClockFunc(func() time.Time { return last })
	}
	return m.Health()
}
