package monitor

import (
	"testing"
	"time"

	"fairflow/internal/telemetry"
	"fairflow/internal/telemetry/eventlog"
)

// TestCoordinatorFlapRuleFiresAndResolves drives the canned coordinator-
// flap rule: a single planned failover stays quiet, a crash loop of
// takeovers fires the alert, and a stable incarnation resolves it.
func TestCoordinatorFlapRuleFiresAndResolves(t *testing.T) {
	clk := newSimClock()
	log := eventlog.NewLog()
	log.SetClock(clk)
	reg := telemetry.NewRegistry()
	takeovers := reg.Counter("remote.coordinator_takeovers_total")

	m := New(Config{Rules: []Rule{CoordinatorFlapRule(0.05)}}, reg, log)

	flap := func(h CampaignHealth) AlertState {
		for _, a := range h.Alerts {
			if a.Alert == "coordinator-flap" {
				return a
			}
		}
		t.Fatal("coordinator-flap alert missing from report")
		return AlertState{}
	}

	// First evaluation establishes the rate base.
	if flap(m.Health()).Firing {
		t.Fatal("coordinator-flap firing before any takeover")
	}

	// One planned failover in 100 simulated seconds: 0.01/s < 0.05 — a
	// deliberate handover is not a flap.
	takeovers.Inc()
	clk.advance(100 * time.Second)
	if a := flap(m.Health()); a.Firing {
		t.Fatalf("single takeover fired the flap alert: %+v", a)
	}

	// Crash loop: 3 takeovers in 10 seconds → 0.3/s > 0.05.
	takeovers.Add(3)
	clk.advance(10 * time.Second)
	if a := flap(m.Health()); !a.Firing {
		t.Fatalf("coordinator-flap quiet through a crash loop: %+v", a)
	}

	// A stable incarnation resolves it.
	clk.advance(60 * time.Second)
	if flap(m.Health()).Firing {
		t.Fatal("coordinator-flap still firing after the loop ended")
	}
}

// TestCoordinatorFlapRuleGrammar pins the canned rule's round-trip through
// the rule grammar, so -rule strings and the Go constructor stay aligned.
func TestCoordinatorFlapRuleGrammar(t *testing.T) {
	want := CoordinatorFlapRule(0.05)
	got, err := ParseRule(want.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("ParseRule(%q) = %+v, want %+v", want.String(), got, want)
	}
}
