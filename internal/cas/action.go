package cas

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"fairflow/internal/telemetry"
	"fairflow/internal/telemetry/eventlog"
)

// Recipe describes one deterministic operation: what kind of work, with
// which parameters, over which inputs (in order). Its digest is the action
// cache key — two executions with the same recipe must produce byte-identical
// outputs, which is what lets a warm re-run skip them.
type Recipe struct {
	// Kind names the operation, versioned (e.g. "tabular/paste@v1") so a
	// semantic change to the operation invalidates old cache entries.
	Kind string
	// Params are the operation's scalar knobs (delimiter, flags, …).
	Params map[string]string
	// Inputs are the content digests of the operation's inputs, in the
	// order the operation consumes them.
	Inputs []Digest
}

// Digest returns the canonical hash of the recipe. Parameters are folded in
// sorted order; every field is length-prefixed so no two distinct recipes
// can collide by concatenation.
func (r Recipe) Digest() Digest {
	h := sha256.New()
	writeField := func(s string) {
		fmt.Fprintf(h, "%d:", len(s))
		io.WriteString(h, s)
	}
	writeField(r.Kind)
	keys := make([]string, 0, len(r.Params))
	for k := range r.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(h, "p%d:", len(keys))
	for _, k := range keys {
		writeField(k)
		writeField(r.Params[k])
	}
	fmt.Fprintf(h, "i%d:", len(r.Inputs))
	for _, in := range r.Inputs {
		writeField(string(in))
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sumToDigest(sum)
}

// ActionResult records what a recipe produced: named output digests plus
// scalar metadata the caller wants back on a cache hit (row counts, …).
type ActionResult struct {
	Outputs map[string]Digest `json:"outputs"`
	Meta    map[string]string `json:"meta,omitempty"`
}

// fileStat is the stat fingerprint used to memoize file hashing: if a path's
// size and mtime are unchanged since its content was last hashed, the cached
// digest is trusted (the classic build-cache heuristic; Rehash defeats it).
type fileStat struct {
	Size  int64  `json:"size"`
	Mtime int64  `json:"mtime_ns"`
	SHA   Digest `json:"sha256"`
}

// actionFile is the persisted form of the action cache.
type actionFile struct {
	Version int                     `json:"version"`
	Actions map[string]ActionResult `json:"actions"` // recipe digest → result
	Files   map[string]fileStat     `json:"files,omitempty"`
}

// ActionCacheVersion is the current actions.json schema version.
const ActionCacheVersion = 1

// ActionCache maps recipe digests to results, backed by a Store that holds
// the output bytes. It persists to a JSON file with atomic writes and also
// carries the file-stat digest memo so warm re-runs need not re-read
// unchanged input files.
type ActionCache struct {
	store *Store
	path  string

	mu      sync.Mutex
	actions map[Digest]ActionResult
	files   map[string]fileStat
	dirty   bool

	// Telemetry counters (nil when unset — increments are then no-ops).
	// Wire them with SetMetrics before concurrent use.
	mHits       *telemetry.Counter
	mMisses     *telemetry.Counter
	mMemoHits   *telemetry.Counter
	mMemoMisses *telemetry.Counter
	// events, when non-nil, journals Get outcomes at debug level.
	events *eventlog.Log
}

// SetEvents journals each Get outcome into l as a debug-level cache.hit /
// cache.miss event keyed by the recipe digest. Debug level keeps the hot
// lookup path silent under the default Info threshold; the level gate is a
// single atomic load. Call before concurrent use; a nil log is a no-op.
func (c *ActionCache) SetEvents(l *eventlog.Log) {
	c.events = l
}

// SetMetrics registers the cache's instruments in reg and starts feeding
// them: cas.action_hits_total / cas.action_misses_total (Get outcomes — a
// cached entry whose output objects were GC'd counts as a miss, matching the
// re-execution it forces) and cas.filehash_memo_hits_total /
// cas.filehash_memo_misses_total (stat-fingerprint digest memo). The backing
// store is wired too. Call before concurrent use; a nil registry is a no-op.
func (c *ActionCache) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.mHits = reg.Counter("cas.action_hits_total")
	c.mMisses = reg.Counter("cas.action_misses_total")
	c.mMemoHits = reg.Counter("cas.filehash_memo_hits_total")
	c.mMemoMisses = reg.Counter("cas.filehash_memo_misses_total")
	c.store.SetMetrics(reg)
}

// OpenActionCache loads (or initialises) the action cache at path, backed by
// the given store.
func OpenActionCache(path string, store *Store) (*ActionCache, error) {
	c := &ActionCache{
		store:   store,
		path:    path,
		actions: map[Digest]ActionResult{},
		files:   map[string]fileStat{},
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var af actionFile
	if err := json.NewDecoder(f).Decode(&af); err != nil {
		return nil, fmt.Errorf("cas: parsing action cache: %w", err)
	}
	if af.Version != ActionCacheVersion {
		return nil, fmt.Errorf("cas: unsupported action cache version %d", af.Version)
	}
	for k, v := range af.Actions {
		c.actions[Digest(k)] = v
	}
	for k, v := range af.Files {
		c.files[k] = v
	}
	return c, nil
}

// Store returns the backing object store.
func (c *ActionCache) Store() *Store { return c.store }

// Len reports the number of cached actions.
func (c *ActionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.actions)
}

// Get looks a recipe up. A hit is only reported when every output object is
// still present in the store — a GC'd or corrupted entry is a miss, so the
// caller transparently re-executes.
func (c *ActionCache) Get(recipe Digest) (ActionResult, bool) {
	c.mu.Lock()
	res, ok := c.actions[recipe]
	c.mu.Unlock()
	if !ok {
		c.mMisses.Inc()
		c.noteGet(eventlog.CacheMiss, recipe)
		return ActionResult{}, false
	}
	for _, d := range res.Outputs {
		if !c.store.Has(d) {
			c.mMisses.Inc()
			c.noteGet(eventlog.CacheMiss, recipe)
			return ActionResult{}, false
		}
	}
	c.mHits.Inc()
	c.noteGet(eventlog.CacheHit, recipe)
	return res, true
}

// noteGet journals one Get outcome when debug events are enabled.
func (c *ActionCache) noteGet(typ string, recipe Digest) {
	if c.events.Enabled(eventlog.Debug) {
		c.events.Append(eventlog.Debug, typ, "", 0,
			telemetry.String("recipe", string(recipe)))
	}
}

// Put records a recipe's result and persists the cache.
func (c *ActionCache) Put(recipe Digest, res ActionResult) error {
	c.mu.Lock()
	c.actions[recipe] = res
	c.dirty = true
	c.mu.Unlock()
	return c.Save()
}

// HashFileCached digests a file, trusting a stat-unchanged memo entry: an
// unchanged (size, mtime) pair returns the recorded digest without reading
// the file. New results are recorded in memory; call Save to persist them.
func (c *ActionCache) HashFileCached(path string) (Digest, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	st, ok := c.files[path]
	c.mu.Unlock()
	if ok && st.Size == fi.Size() && st.Mtime == fi.ModTime().UnixNano() {
		c.mMemoHits.Inc()
		return st.SHA, nil
	}
	c.mMemoMisses.Inc()
	d, _, err := HashFile(path)
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	c.files[path] = fileStat{Size: fi.Size(), Mtime: fi.ModTime().UnixNano(), SHA: d}
	c.dirty = true
	c.mu.Unlock()
	return d, nil
}

// Save persists the cache atomically if it changed since the last save.
func (c *ActionCache) Save() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.dirty {
		return nil
	}
	af := actionFile{
		Version: ActionCacheVersion,
		Actions: make(map[string]ActionResult, len(c.actions)),
		Files:   make(map[string]fileStat, len(c.files)),
	}
	for k, v := range c.actions {
		af.Actions[string(k)] = v
	}
	for k, v := range c.files {
		af.Files[k] = v
	}
	data, err := json.MarshalIndent(af, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileAtomic(c.path, data, 0o644); err != nil {
		return err
	}
	c.dirty = false
	return nil
}

// Live returns the set of output digests referenced by any cached action —
// the ref-count roots a GC sweep keeps. Input digests are not roots: inputs
// live outside the store (or are themselves some other action's outputs).
func (c *ActionCache) Live() map[Digest]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	live := map[Digest]bool{}
	for _, res := range c.actions {
		for _, d := range res.Outputs {
			live[d] = true
		}
	}
	return live
}
