package cas

import (
	"crypto/sha256"
	"hash"
	"io"
	"os"
	"sync"
)

// The chunked kernel is the single byte-moving core under every hashing and
// ingestion path in the package: Put, PutFile, PutAll, HashReader, HashFile
// and Verify all pump bytes through hashCopy. One pass, one pooled buffer —
// a multi-GB artifact is hashed (and simultaneously spooled to its temp
// object) without ever being whole in memory, and without io.Copy's
// per-call 32 KiB allocation.

// chunkSize is the pooled transfer-buffer size. Large enough that syscall
// and hash-setup overhead amortise to noise against sha256 throughput;
// small enough that a pool of them is cheap to keep warm across a
// many-file ingestion burst.
const chunkSize = 1024 * 1024

var chunkPool = sync.Pool{
	New: func() any {
		b := make([]byte, chunkSize)
		return &b
	},
}

// hashCopy streams src through h in chunkSize reads, mirroring each chunk
// to dst when dst is non-nil (the ingestion path: hash while spooling, not
// after). It returns the byte count.
func hashCopy(dst io.Writer, h hash.Hash, src io.Reader) (int64, error) {
	bufp := chunkPool.Get().(*[]byte)
	defer chunkPool.Put(bufp)
	buf := *bufp
	var n int64
	for {
		r, rerr := src.Read(buf)
		if r > 0 {
			n += int64(r)
			// hash.Hash.Write never returns an error.
			h.Write(buf[:r])
			if dst != nil {
				if w, werr := dst.Write(buf[:r]); werr != nil {
					return n, werr
				} else if w < r {
					return n, io.ErrShortWrite
				}
			}
		}
		if rerr == io.EOF {
			return n, nil
		}
		if rerr != nil {
			return n, rerr
		}
	}
}

// hashReaderChunked digests a stream through the chunked kernel.
func hashReaderChunked(r io.Reader) (Digest, int64, error) {
	h := sha256.New()
	n, err := hashCopy(nil, h, r)
	if err != nil {
		return "", n, err
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sumToDigest(sum), n, nil
}

// PutResult is one file's ingestion outcome from PutAll.
type PutResult struct {
	Path   string
	Digest Digest
	Size   int64
	Err    error
}

// PutAll ingests a set of files concurrently with at most workers in
// flight, the shape of storing a run's whole output set after a campaign
// step. Each file streams through the chunked hash-while-spooling kernel
// exactly as PutFile does, but index bookkeeping is batched: workers only
// ingest object bytes, and the index is updated and persisted once at the
// end instead of once per file — the per-Put index save is the serial
// bottleneck a parallel ingest would otherwise immediately hit.
//
// Results are returned in input order. The first error (if any) is also
// returned, but every file is attempted regardless.
func (s *Store) PutAll(paths []string, workers int) ([]PutResult, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(paths) {
		workers = len(paths)
	}
	results := make([]PutResult, len(paths))
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				d, n, err := s.putFile(paths[i], false)
				results[i] = PutResult{Path: paths[i], Digest: d, Size: n, Err: err}
			}
		}()
	}
	for i := range paths {
		next <- i
	}
	close(next)
	wg.Wait()

	// One index pass, one save.
	s.mu.Lock()
	changed := false
	for _, r := range results {
		if r.Err == nil && s.idx.add(r.Digest, r.Size) {
			changed = true
		}
	}
	var serr error
	if changed {
		serr = s.idx.save()
	}
	s.mu.Unlock()

	var firstErr error
	for _, r := range results {
		if r.Err != nil {
			firstErr = r.Err
			break
		}
	}
	if firstErr == nil {
		firstErr = serr
	}
	return results, firstErr
}

// putFile ingests one file's bytes, optionally updating the index (PutAll
// defers that to a single batched pass).
func (s *Store) putFile(path string, updateIndex bool) (Digest, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	return s.put(f, updateIndex)
}
