package cas

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// IndexVersion is the current index schema version.
const IndexVersion = 1

// ObjectInfo is one object's metadata.
type ObjectInfo struct {
	Size int64 `json:"size"`
}

// Index is the store's JSON metadata: hex digest → object info. The object
// files themselves are the source of truth; the index makes stats and GC
// sweeps cheap (no directory walk) and records sizes without re-stating.
type Index struct {
	Version int                   `json:"version"`
	Objects map[string]ObjectInfo `json:"objects"`

	path string
}

// DecodeIndex parses and validates index JSON. It is the decoder the
// FuzzIndexDecode target exercises: arbitrary bytes must either yield a
// structurally valid index or an error — never a panic or an index that
// later corrupts the store.
func DecodeIndex(data []byte) (*Index, error) {
	return DecodeIndexFrom(bytes.NewReader(data))
}

// DecodeIndexFrom is DecodeIndex over a stream: loadIndex feeds the index
// file through it directly, so even a pathological multi-MB index is never
// slurped into one buffer on top of the decoder's working set.
func DecodeIndexFrom(r io.Reader) (*Index, error) {
	var idx Index
	if err := json.NewDecoder(r).Decode(&idx); err != nil {
		return nil, fmt.Errorf("cas: parsing index: %w", err)
	}
	if idx.Version != IndexVersion {
		return nil, fmt.Errorf("cas: unsupported index version %d", idx.Version)
	}
	if idx.Objects == nil {
		idx.Objects = map[string]ObjectInfo{}
	}
	for hx, obj := range idx.Objects {
		if !Digest(digestPrefix + hx).Valid() {
			return nil, fmt.Errorf("cas: index entry %q is not a sha256 hex digest", hx)
		}
		if obj.Size < 0 {
			return nil, fmt.Errorf("cas: index entry %s has negative size %d", hx[:12], obj.Size)
		}
	}
	return &idx, nil
}

// loadIndex reads the index file, returning an empty index when absent.
func loadIndex(path string) (*Index, error) {
	idx := &Index{Version: IndexVersion, Objects: map[string]ObjectInfo{}, path: path}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return idx, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	parsed, err := DecodeIndexFrom(f)
	if err != nil {
		return nil, err
	}
	parsed.path = path
	return parsed, nil
}

// add records an object, reporting whether the index changed.
func (idx *Index) add(d Digest, size int64) bool {
	hx := d.hexPart()
	if _, ok := idx.Objects[hx]; ok {
		return false
	}
	idx.Objects[hx] = ObjectInfo{Size: size}
	return true
}

// save writes the index atomically (temp file + rename): a crash mid-write
// leaves the previous index intact, never a torn one.
func (idx *Index) save() error {
	data, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(idx.path, data, 0o644)
}

// writeFileAtomic writes data to path via a temp file in the same directory
// and an atomic rename. The temp file is fsynced before the rename and the
// parent directory after it, so the write is durable across power loss —
// not just atomic against crashes and concurrent readers.
func writeFileAtomic(path string, data []byte, mode os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Chmod(tmpName, mode)
	}
	if werr == nil {
		werr = os.Rename(tmpName, path)
	}
	if werr == nil {
		werr = syncDir(dir)
	}
	if werr != nil {
		os.Remove(tmpName)
	}
	return werr
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}
