package cas

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// BenchmarkCASIngest ingests a run's 16-file × 4 MiB output set — the shape
// of storing a campaign step's artifacts. "sequential" is the pre-PutAll
// caller pattern (a PutFile loop: per-file index save, one file hashed at a
// time); "parallel4" is PutAll with 4 workers sharing the chunked kernel's
// pooled buffers and one batched index save. Parallel ingestion wins by
// overlapping per-object fsync waits (and, on multi-core hosts, the hashing
// itself), so it runs on real storage — which also means the absolute
// numbers inherit the device's fsync scheduling noise. The regression gate
// therefore checks this benchmark only through the same-run parallel-vs-
// sequential ratio, not through absolute wall-clock (see Makefile
// bench-gate).
func BenchmarkCASIngest(b *testing.B) {
	const nFiles, fileSize = 16, 4 << 20
	dir := b.TempDir()
	paths := make([]string, nFiles)
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, fileSize)
	for i := range paths {
		rng.Read(buf)
		paths[i] = filepath.Join(dir, fmt.Sprintf("out%02d.bin", i))
		if err := os.WriteFile(paths[i], buf, 0o644); err != nil {
			b.Fatal(err)
		}
	}
	totalBytes := int64(nFiles * fileSize)

	// Each iteration ingests into a fresh store (no dedup short-circuit),
	// torn down immediately so long runs don't accumulate object sets.
	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(totalBytes)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			root := filepath.Join(b.TempDir(), "store")
			store, err := Open(root)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for _, p := range paths {
				if _, _, err := store.PutFile(p); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			os.RemoveAll(root)
			b.StartTimer()
		}
	})
	b.Run("parallel4", func(b *testing.B) {
		b.SetBytes(totalBytes)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			root := filepath.Join(b.TempDir(), "store")
			store, err := Open(root)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := store.PutAll(paths, 4); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			os.RemoveAll(root)
			b.StartTimer()
		}
	})
}

// BenchmarkHashFile pins the chunked hashing kernel's single-stream
// throughput on a multi-chunk input.
func BenchmarkHashFile(b *testing.B) {
	dir := b.TempDir()
	const size = 8 << 20
	data := make([]byte, size)
	rand.New(rand.NewSource(2)).Read(data)
	path := filepath.Join(dir, "artifact.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := HashFile(path); err != nil {
			b.Fatal(err)
		}
	}
}
