package cas

import (
	"encoding/json"
	"testing"
)

// FuzzIndexDecode drives arbitrary bytes through the index decoder: it must
// never panic, and any index it accepts must re-encode/decode to the same
// object set (the round-trip property a store reopen depends on).
func FuzzIndexDecode(f *testing.F) {
	f.Add([]byte(`{"version":1,"objects":{}}`))
	f.Add([]byte(`{"version":1,"objects":{"` +
		`aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa":{"size":12}}}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"version":1,"objects":{"nothex":{"size":1}}}`))
	f.Add([]byte(`{"version":1,"objects":{"` +
		`bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb":{"size":-5}}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := DecodeIndex(data)
		if err != nil {
			return
		}
		// Accepted indexes must satisfy the invariants the store relies on.
		if idx.Version != IndexVersion {
			t.Fatalf("accepted version %d", idx.Version)
		}
		for hx, obj := range idx.Objects {
			if !Digest(digestPrefix + hx).Valid() {
				t.Fatalf("accepted malformed digest key %q", hx)
			}
			if obj.Size < 0 {
				t.Fatalf("accepted negative size %d", obj.Size)
			}
		}
		// Round trip: encode and decode back to an equivalent index.
		out, err := json.Marshal(idx)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		idx2, err := DecodeIndex(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(idx2.Objects) != len(idx.Objects) {
			t.Fatalf("round trip changed object count: %d → %d", len(idx.Objects), len(idx2.Objects))
		}
		for hx, obj := range idx.Objects {
			if idx2.Objects[hx] != obj {
				t.Fatalf("round trip changed entry %q", hx)
			}
		}
	})
}
