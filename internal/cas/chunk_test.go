package cas

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// writeRandomFile writes n pseudorandom bytes (seeded) to dir/name.
func writeRandomFile(t testing.TB, dir, name string, n int, seed int64) string {
	t.Helper()
	data := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(data)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestHashFilePutAgreeMultiChunk pins the satellite contract: HashFile,
// HashReader, HashBytes and Put all agree on the digest of an input larger
// than the chunked kernel's buffer — so a digest computed without storing
// (provenance, memo lookups) always matches what ingestion stores under.
func TestHashFilePutAgreeMultiChunk(t *testing.T) {
	dir := t.TempDir()
	// 2.5 chunks plus a ragged tail: exercises full-buffer reads, a partial
	// final read, and the chunk-boundary stitching in between.
	n := chunkSize*2 + chunkSize/2 + 17
	path := writeRandomFile(t, dir, "big.bin", n, 42)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	want := HashBytes(data)
	hf, hn, err := HashFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if hf != want || hn != int64(n) {
		t.Fatalf("HashFile = (%s, %d), want (%s, %d)", hf.Short(), hn, want.Short(), n)
	}
	hr, _, err := HashReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if hr != want {
		t.Fatalf("HashReader = %s, want %s", hr.Short(), want.Short())
	}

	store, err := Open(filepath.Join(dir, "cas"))
	if err != nil {
		t.Fatal(err)
	}
	pd, pn, err := store.PutFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if pd != want || pn != int64(n) {
		t.Fatalf("Put = (%s, %d), want (%s, %d)", pd.Short(), pn, want.Short(), n)
	}
	if err := store.Verify(pd); err != nil {
		t.Fatalf("Verify after multi-chunk Put: %v", err)
	}
	rc, err := store.Get(pd)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stored object bytes differ from source")
	}
}

// TestPutAll pins the parallel ingestion contract: results in input order,
// digests identical to sequential PutFile, duplicates deduplicated, and the
// index persisted once with every object present after reopen.
func TestPutAll(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 9; i++ {
		// Mix of sub-chunk and multi-chunk files; files 0 and 8 are
		// identical content (dedup case).
		size := 10_000 + i*37
		seed := int64(i)
		if i == 8 {
			seed, size = 0, 10_000 // byte-identical to file 0
		}
		if i == 4 {
			size = chunkSize + 999
		}
		paths = append(paths, writeRandomFile(t, dir, filepath.Base(dir)+string(rune('a'+i)), size, seed))
	}
	want := make([]Digest, len(paths))
	for i, p := range paths {
		d, _, err := HashFile(p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = d
	}

	root := filepath.Join(dir, "cas")
	store, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	results, err := store.PutAll(paths, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(paths) {
		t.Fatalf("got %d results for %d paths", len(results), len(paths))
	}
	for i, r := range results {
		if r.Path != paths[i] {
			t.Fatalf("result %d out of order: %s", i, r.Path)
		}
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		if r.Digest != want[i] {
			t.Fatalf("result %d digest %s, want %s", i, r.Digest.Short(), want[i].Short())
		}
		if !store.Has(r.Digest) {
			t.Fatalf("object %s missing after PutAll", r.Digest.Short())
		}
	}
	if results[0].Digest != results[8].Digest {
		t.Fatal("identical content produced different digests")
	}
	// 9 files, one duplicate pair → 8 distinct objects, persisted.
	reopened, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if st := reopened.Stats(); st.Objects != 8 {
		t.Fatalf("reopened store has %d objects, want 8", st.Objects)
	}
	if errs := reopened.VerifyAll(); len(errs) != 0 {
		t.Fatalf("corruption after parallel ingest: %v", errs)
	}
}

// TestPutAllPartialFailure: a missing file reports its error but every
// other file still lands in the store and the index.
func TestPutAllPartialFailure(t *testing.T) {
	dir := t.TempDir()
	good1 := writeRandomFile(t, dir, "g1", 5_000, 1)
	good2 := writeRandomFile(t, dir, "g2", 5_000, 2)
	store, err := Open(filepath.Join(dir, "cas"))
	if err != nil {
		t.Fatal(err)
	}
	results, err := store.PutAll([]string{good1, filepath.Join(dir, "missing"), good2}, 2)
	if err == nil {
		t.Fatal("PutAll with a missing file returned nil error")
	}
	if results[1].Err == nil {
		t.Fatal("missing file's result carries no error")
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Fatalf("good file %d failed: %v", i, results[i].Err)
		}
		if !store.Has(results[i].Digest) {
			t.Fatalf("good file %d not stored", i)
		}
	}
	if st := store.Stats(); st.Objects != 2 {
		t.Fatalf("stats report %d objects, want 2", st.Objects)
	}
}
