// Package cas is a content-addressed artifact store with an action cache:
// the persistence layer behind memoized re-execution. Artifacts are
// identified by the SHA-256 of their bytes (the paper's persistent
// identifiers for intermediate data, and the substrate that makes the gauge
// ontology's input-digest/output-digest terms real); an action cache maps a
// recipe digest — hash of (operation kind, parameters, ordered input
// digests) — to the digests of the outputs that operation produced. A warm
// re-run looks its recipe up, finds the outputs already in the store, and
// skips the work entirely.
//
// On-disk layout under a store root:
//
//	objects/<aa>/<rest-of-hex>   — one file per object, named by digest
//	index.json                   — object metadata (size per digest)
//	actions.json                 — the action cache (when co-located)
//
// All metadata writes are atomic (temp file + rename), so a crash never
// leaves a torn index behind.
package cas

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"fairflow/internal/telemetry"
)

// Digest identifies an object: "sha256:<64 hex chars>".
type Digest string

// digestPrefix is the only supported algorithm tag.
const digestPrefix = "sha256:"

// Valid reports whether d is a well-formed sha256 digest.
func (d Digest) Valid() bool {
	if !strings.HasPrefix(string(d), digestPrefix) {
		return false
	}
	hx := string(d[len(digestPrefix):])
	if len(hx) != sha256.Size*2 {
		return false
	}
	_, err := hex.DecodeString(hx)
	return err == nil
}

// hexPart returns the hex portion of the digest.
func (d Digest) hexPart() string { return strings.TrimPrefix(string(d), digestPrefix) }

// Short returns a 12-character abbreviation for display.
func (d Digest) Short() string {
	hx := d.hexPart()
	if len(hx) > 12 {
		return hx[:12]
	}
	return hx
}

// sumToDigest converts a raw SHA-256 sum to a Digest.
func sumToDigest(sum [sha256.Size]byte) Digest {
	return Digest(digestPrefix + hex.EncodeToString(sum[:]))
}

// HashBytes digests a byte slice without storing it.
func HashBytes(b []byte) Digest { return sumToDigest(sha256.Sum256(b)) }

// HashReader digests a stream without storing it, returning the byte count.
// It shares the chunked kernel with Put, so the two always agree on what a
// byte stream hashes to.
func HashReader(r io.Reader) (Digest, int64, error) {
	return hashReaderChunked(r)
}

// HashFile digests a file's content without storing it.
func HashFile(path string) (Digest, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	return HashReader(f)
}

// Store is an on-disk content-addressed object store. It is safe for
// concurrent use.
type Store struct {
	root string

	mu  sync.Mutex
	idx *Index

	// Telemetry counters (nil when unset — increments are then no-ops).
	// Wire them with SetMetrics before concurrent use.
	mPutBytes     *telemetry.Counter
	mObjectsPut   *telemetry.Counter
	mPutDedup     *telemetry.Counter
	mMaterialized *telemetry.Counter
}

// SetMetrics registers the store's instruments in reg and starts feeding
// them: cas.put_bytes_total (bytes streamed through Put), cas.objects_put_total
// (new objects stored), cas.put_dedup_total (Puts satisfied by an existing
// object), cas.materialize_total (Materialize calls). Call before the store
// is used concurrently; a nil registry is a no-op.
func (s *Store) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.mPutBytes = reg.Counter("cas.put_bytes_total")
	s.mObjectsPut = reg.Counter("cas.objects_put_total")
	s.mPutDedup = reg.Counter("cas.put_dedup_total")
	s.mMaterialized = reg.Counter("cas.materialize_total")
}

// Open opens (creating if necessary) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("cas: opening store: %w", err)
	}
	idx, err := loadIndex(filepath.Join(dir, "index.json"))
	if err != nil {
		return nil, err
	}
	return &Store{root: dir, idx: idx}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// objectPath maps a digest to its object file.
func (s *Store) objectPath(d Digest) string {
	hx := d.hexPart()
	return filepath.Join(s.root, "objects", hx[:2], hx[2:])
}

// Put streams r into the store, returning the content digest and size. The
// bytes make a single pass through the chunked kernel — hashed *while*
// spooling to a temp file (pooled 1 MiB buffers, no io.Copy allocation, no
// whole-file slurp) — and the temp object is renamed into place, so a
// concurrent reader never observes a partial object; storing bytes that
// already exist is a cheap no-op.
func (s *Store) Put(r io.Reader) (Digest, int64, error) {
	return s.put(r, true)
}

// put is Put with index bookkeeping optional: PutAll workers skip it and
// batch the index update into one pass + one save at the end.
func (s *Store) put(r io.Reader, updateIndex bool) (Digest, int64, error) {
	tmp, err := os.CreateTemp(filepath.Join(s.root, "objects"), "put-*")
	if err != nil {
		return "", 0, err
	}
	tmpName := tmp.Name()
	h := sha256.New()
	n, err := hashCopy(tmp, h, r)
	// The object's bytes must be on stable storage before the rename
	// publishes them: rename-then-crash must never yield a named but empty
	// (or torn) object.
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return "", n, err
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	d := sumToDigest(sum)

	s.mPutBytes.Add(n)
	dst := s.objectPath(d)
	if _, statErr := os.Stat(dst); statErr == nil {
		os.Remove(tmpName) // already stored; content-addressing dedups
		s.mPutDedup.Inc()
	} else {
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			os.Remove(tmpName)
			return "", n, err
		}
		// Objects are immutable: read-only mode guards hard-linked
		// materialized copies against accidental in-place truncation.
		os.Chmod(tmpName, 0o444)
		if err := os.Rename(tmpName, dst); err != nil {
			os.Remove(tmpName)
			return "", n, err
		}
		// Durability of the rename itself: the new directory entry must
		// survive power loss, so fsync the parent directory too.
		if err := syncDir(filepath.Dir(dst)); err != nil {
			return "", n, err
		}
		s.mObjectsPut.Inc()
	}

	if !updateIndex {
		return d, n, nil
	}
	s.mu.Lock()
	changed := s.idx.add(d, n)
	var serr error
	if changed {
		serr = s.idx.save()
	}
	s.mu.Unlock()
	return d, n, serr
}

// PutFile stores the named file's content.
func (s *Store) PutFile(path string) (Digest, int64, error) {
	return s.putFile(path, true)
}

// PutBytes stores a byte slice.
func (s *Store) PutBytes(b []byte) (Digest, int64, error) {
	return s.Put(strings.NewReader(string(b)))
}

// Has reports whether the object exists in the store.
func (s *Store) Has(d Digest) bool {
	if !d.Valid() {
		return false
	}
	_, err := os.Stat(s.objectPath(d))
	return err == nil
}

// Get opens an object for reading.
func (s *Store) Get(d Digest) (io.ReadCloser, error) {
	if !d.Valid() {
		return nil, fmt.Errorf("cas: malformed digest %q", d)
	}
	f, err := os.Open(s.objectPath(d))
	if err != nil {
		return nil, fmt.Errorf("cas: object %s: %w", d.Short(), err)
	}
	return f, nil
}

// Materialize places the object's content at dst: a hard link when the
// filesystem allows it (zero-copy, byte-identical by construction), a full
// copy otherwise. An existing dst is replaced. A hard-linked dst shares the
// store's inode — writers that later regenerate dst must remove it first
// (never truncate in place), which is what the paste executor does; objects
// are stored read-only to catch violations.
func (s *Store) Materialize(d Digest, dst string) error {
	src := s.objectPath(d)
	if _, err := os.Stat(src); err != nil {
		return fmt.Errorf("cas: materialize %s: %w", d.Short(), err)
	}
	s.mMaterialized.Inc()
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	os.Remove(dst)
	if err := os.Link(src, dst); err == nil {
		return nil
	}
	// Cross-device or link-hostile filesystem: copy.
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		os.Remove(dst)
		return err
	}
	return out.Close()
}

// Verify re-hashes one object and checks it matches its digest.
func (s *Store) Verify(d Digest) error {
	got, _, err := HashFile(s.objectPath(d))
	if err != nil {
		return fmt.Errorf("cas: verify %s: %w", d.Short(), err)
	}
	if got != d {
		return fmt.Errorf("cas: object %s is corrupt (content hashes to %s)", d.Short(), got.Short())
	}
	return nil
}

// VerifyAll re-hashes every indexed object, returning all corruption errors.
func (s *Store) VerifyAll() []error {
	var errs []error
	for _, d := range s.Digests() {
		if err := s.Verify(d); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// Digests lists every indexed object in sorted order.
func (s *Store) Digests() []Digest {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Digest, 0, len(s.idx.Objects))
	for hx := range s.idx.Objects {
		out = append(out, Digest(digestPrefix+hx))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats summarises the store.
type Stats struct {
	Objects int   `json:"objects"`
	Bytes   int64 `json:"bytes"`
}

// Stats returns object count and total payload bytes.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Objects: len(s.idx.Objects)}
	for _, o := range s.idx.Objects {
		st.Bytes += o.Size
	}
	return st
}

// GC removes every object not referenced by the live set (the ref-counting
// sweep: liveness flows from live manifests — action-cache entries — down to
// objects). It returns the number of objects removed and the bytes freed.
func (s *Store) GC(live map[Digest]bool) (removed int, freed int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for hx, obj := range s.idx.Objects {
		d := Digest(digestPrefix + hx)
		if live[d] {
			continue
		}
		if rmErr := os.Remove(s.objectPath(d)); rmErr != nil && !os.IsNotExist(rmErr) {
			err = rmErr
			continue
		}
		delete(s.idx.Objects, hx)
		removed++
		freed += obj.Size
	}
	if removed > 0 {
		if serr := s.idx.save(); err == nil {
			err = serr
		}
	}
	return removed, freed, err
}
