package cas

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("hello, content-addressed world\n")
	d, n, err := s.PutBytes(content)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(content)) {
		t.Fatalf("size = %d, want %d", n, len(content))
	}
	if !d.Valid() {
		t.Fatalf("digest %q not valid", d)
	}
	if d != HashBytes(content) {
		t.Fatalf("Put digest %s != HashBytes %s", d, HashBytes(content))
	}
	if !s.Has(d) {
		t.Fatal("Has = false after Put")
	}
	rc, err := s.Get(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("Get returned %q, want %q", got, content)
	}
}

func TestPutDeduplicates(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d1, _, err := s.PutBytes([]byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := s.PutBytes([]byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digests differ: %s vs %s", d1, d2)
	}
	if st := s.Stats(); st.Objects != 1 {
		t.Fatalf("Objects = %d, want 1", st.Objects)
	}
}

func TestIndexPersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := s.PutBytes([]byte("persist me"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Has(d) {
		t.Fatal("reopened store lost the object")
	}
	st := s2.Stats()
	if st.Objects != 1 || st.Bytes != int64(len("persist me")) {
		t.Fatalf("stats after reopen = %+v", st)
	}
}

func TestMaterializeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte(strings.Repeat("row\tcol\n", 1000))
	d, _, err := s.PutBytes(content)
	if err != nil {
		t.Fatal(err)
	}
	// Materialize over a pre-existing stale file must replace it.
	dst := filepath.Join(dir, "out", "mat.tsv")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Materialize(d, dst); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("materialized bytes differ from stored content")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := s.PutBytes([]byte("pristine"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(d); err != nil {
		t.Fatalf("fresh object failed verify: %v", err)
	}
	if errs := s.VerifyAll(); len(errs) != 0 {
		t.Fatalf("VerifyAll on clean store: %v", errs)
	}
	if err := os.WriteFile(s.objectPath(d), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(d); err == nil {
		t.Fatal("Verify missed corruption")
	}
	if errs := s.VerifyAll(); len(errs) != 1 {
		t.Fatalf("VerifyAll found %d errors, want 1", len(errs))
	}
}

func TestGCKeepsLiveRemovesDead(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	live, _, err := s.PutBytes([]byte("referenced output"))
	if err != nil {
		t.Fatal(err)
	}
	dead, _, err := s.PutBytes([]byte("orphaned intermediate"))
	if err != nil {
		t.Fatal(err)
	}
	cache, err := OpenActionCache(filepath.Join(dir, "actions.json"), s)
	if err != nil {
		t.Fatal(err)
	}
	rec := Recipe{Kind: "test/op@v1", Inputs: []Digest{HashBytes([]byte("in"))}}
	if err := cache.Put(rec.Digest(), ActionResult{Outputs: map[string]Digest{"out": live}}); err != nil {
		t.Fatal(err)
	}
	removed, freed, err := s.GC(cache.Live())
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || freed != int64(len("orphaned intermediate")) {
		t.Fatalf("GC removed %d objects / %d bytes, want 1 / %d", removed, freed, len("orphaned intermediate"))
	}
	if !s.Has(live) {
		t.Fatal("GC removed a live object")
	}
	if s.Has(dead) {
		t.Fatal("GC kept a dead object")
	}
	// The GC'd entry must now miss (Get checks store presence).
	if _, ok := cache.Get(Recipe{Kind: "other"}.Digest()); ok {
		t.Fatal("phantom hit")
	}
}

func TestActionCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := s.PutBytes([]byte("the output"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "actions.json")
	cache, err := OpenActionCache(path, s)
	if err != nil {
		t.Fatal(err)
	}
	rec := Recipe{
		Kind:   "tabular/paste@v1",
		Params: map[string]string{"delim": "\t"},
		Inputs: []Digest{HashBytes([]byte("a")), HashBytes([]byte("b"))},
	}
	res := ActionResult{
		Outputs: map[string]Digest{"out": out},
		Meta:    map[string]string{"rows": "42"},
	}
	if err := cache.Put(rec.Digest(), res); err != nil {
		t.Fatal(err)
	}
	// Reload from disk; the entry must survive with metadata intact.
	cache2, err := OpenActionCache(path, s)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := cache2.Get(rec.Digest())
	if !ok {
		t.Fatal("cache miss after reload")
	}
	if got.Outputs["out"] != out || got.Meta["rows"] != "42" {
		t.Fatalf("reloaded result = %+v", got)
	}
	if cache2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", cache2.Len())
	}
}

func TestActionCacheMissWhenOutputEvicted(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := s.PutBytes([]byte("will vanish"))
	if err != nil {
		t.Fatal(err)
	}
	cache, err := OpenActionCache(filepath.Join(dir, "actions.json"), s)
	if err != nil {
		t.Fatal(err)
	}
	rd := Recipe{Kind: "k"}.Digest()
	if err := cache.Put(rd, ActionResult{Outputs: map[string]Digest{"out": out}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(rd); !ok {
		t.Fatal("expected hit before eviction")
	}
	os.Remove(s.objectPath(out))
	if _, ok := cache.Get(rd); ok {
		t.Fatal("hit reported for evicted output — would materialize nothing")
	}
}

func TestRecipeDigestSensitivity(t *testing.T) {
	base := Recipe{
		Kind:   "op@v1",
		Params: map[string]string{"a": "1", "b": "2"},
		Inputs: []Digest{HashBytes([]byte("x")), HashBytes([]byte("y"))},
	}
	variants := []Recipe{
		{Kind: "op@v2", Params: base.Params, Inputs: base.Inputs},
		{Kind: base.Kind, Params: map[string]string{"a": "1", "b": "3"}, Inputs: base.Inputs},
		{Kind: base.Kind, Params: base.Params, Inputs: []Digest{base.Inputs[1], base.Inputs[0]}}, // order matters
		{Kind: base.Kind, Params: base.Params, Inputs: base.Inputs[:1]},
	}
	bd := base.Digest()
	for i, v := range variants {
		if v.Digest() == bd {
			t.Fatalf("variant %d collides with base recipe", i)
		}
	}
	// Param iteration order must not matter.
	same := Recipe{Kind: "op@v1", Params: map[string]string{"b": "2", "a": "1"}, Inputs: base.Inputs}
	if same.Digest() != bd {
		t.Fatal("recipe digest depends on map iteration order")
	}
}

func TestHashFileCachedTrustsStatAndInvalidatesOnChange(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := OpenActionCache(filepath.Join(dir, "actions.json"), s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "input.txt")
	if err := os.WriteFile(path, []byte("v1 contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	d1, err := cache.HashFileCached(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := HashBytes([]byte("v1 contents")); d1 != want {
		t.Fatalf("digest = %s, want %s", d1, want)
	}
	d2, err := cache.HashFileCached(path)
	if err != nil {
		t.Fatal(err)
	}
	if d2 != d1 {
		t.Fatal("stat-unchanged rehash returned a different digest")
	}
	if err := os.WriteFile(path, []byte("v2 contents!"), 0o644); err != nil {
		t.Fatal(err)
	}
	d3, err := cache.HashFileCached(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := HashBytes([]byte("v2 contents!")); d3 != want {
		t.Fatalf("changed file digest = %s, want %s", d3, want)
	}
}

func TestOpenRejectsCorruptIndex(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted an unsupported index version")
	}
}
