package stream_test

import (
	"fmt"
	"time"

	"fairflow/internal/stream"
)

// Example runs the Fig. 5 pattern in miniature: a scheduler with a live
// queue, a steering-installed selection queue, and punctuation pulling one
// item out.
func Example() {
	schema := &stream.Schema{Name: "shot", Fields: []stream.Field{{Name: "v", Type: stream.TInt64}}}
	sched := stream.NewScheduler()
	sched.Subscribe(func(queue string, it stream.Item) {
		fmt.Printf("%s ← item %d\n", queue, it.Seq)
	})
	sched.Install("live", stream.ForwardAll{})

	sel, _ := stream.NewDirectSelection(100)
	sched.Punctuate(stream.Punctuation{Op: stream.OpInstall, Queue: "steered", Policy: sel})

	for i := int64(1); i <= 3; i++ {
		rec, _ := stream.NewRecord(schema, i)
		sched.Ingest(stream.Item{Seq: i, Time: time.Unix(i, 0), Payload: rec})
	}
	sched.Punctuate(stream.Punctuation{Op: stream.OpSelect, Queue: "steered", Seqs: []int64{2}})
	// Output:
	// live ← item 1
	// live ← item 2
	// live ← item 3
	// steered ← item 2
}
