package stream

import (
	"math"
	"testing"
	"time"
)

func aggSchema() *Schema {
	return &Schema{Name: "probe", Fields: []Field{
		{Name: "id", Type: TInt64},
		{Name: "temp", Type: TFloat64},
		{Name: "label", Type: TString},
	}}
}

func aggItem(t *testing.T, seq int64, temp float64) Item {
	t.Helper()
	rec, err := NewRecord(aggSchema(), seq, temp, "x")
	if err != nil {
		t.Fatal(err)
	}
	return Item{Seq: seq, Time: time.Unix(seq, 0), Payload: rec}
}

func TestAggregatingWindowEmitsSummaries(t *testing.T) {
	p, err := NewAggregatingWindow(aggSchema(), 3)
	if err != nil {
		t.Fatal(err)
	}
	out := p.OutputSchema()
	if out.Name != "probe.agg" || len(out.Fields) != 3 {
		t.Fatalf("output schema: %+v", out)
	}
	if out.Fields[0].Name != "count" || out.Fields[1].Name != "id_mean" || out.Fields[2].Name != "temp_mean" {
		t.Fatalf("output fields: %+v", out.Fields)
	}

	var emitted []Item
	for i := int64(1); i <= 6; i++ {
		emitted = append(emitted, p.Admit(aggItem(t, i, float64(i)*10))...)
	}
	if len(emitted) != 2 {
		t.Fatalf("summaries = %d", len(emitted))
	}
	first := emitted[0].Payload
	if first.Values[0].(int64) != 3 {
		t.Fatalf("count: %v", first.Values[0])
	}
	if mean := first.Values[2].(float64); math.Abs(mean-20) > 1e-12 {
		t.Fatalf("temp mean: %v", mean)
	}
	second := emitted[1].Payload
	if mean := second.Values[2].(float64); math.Abs(mean-50) > 1e-12 {
		t.Fatalf("second window temp mean: %v", mean)
	}
	// Summary validates against its own schema.
	if err := first.Validate(); err != nil {
		t.Fatal(err)
	}
	// Timestamps come from the window's last member.
	if !emitted[0].Time.Equal(time.Unix(3, 0)) {
		t.Fatalf("summary time: %v", emitted[0].Time)
	}
}

func TestAggregatingWindowFlushPartial(t *testing.T) {
	p, _ := NewAggregatingWindow(aggSchema(), 10)
	p.Admit(aggItem(t, 1, 5))
	p.Admit(aggItem(t, 2, 15))
	out := p.Flush()
	if len(out) != 1 {
		t.Fatalf("flush emitted %d", len(out))
	}
	if out[0].Payload.Values[0].(int64) != 2 {
		t.Fatalf("partial count: %v", out[0].Payload.Values[0])
	}
	if p.Flush() != nil {
		t.Fatal("second flush emitted")
	}
}

func TestAggregatingWindowValidation(t *testing.T) {
	if _, err := NewAggregatingWindow(aggSchema(), 0); err == nil {
		t.Fatal("zero window accepted")
	}
	noNumeric := &Schema{Name: "s", Fields: []Field{{Name: "tag", Type: TString}}}
	if _, err := NewAggregatingWindow(noNumeric, 4); err == nil {
		t.Fatal("numeric-free schema accepted")
	}
	bad := &Schema{}
	if _, err := NewAggregatingWindow(bad, 4); err == nil {
		t.Fatal("invalid schema accepted")
	}
}

func TestAggregatingWindowDropsForeignRecords(t *testing.T) {
	p, _ := NewAggregatingWindow(aggSchema(), 2)
	foreign, _ := NewRecord(intSchema(), int64(1))
	if out := p.Admit(Item{Seq: 1, Payload: foreign}); out != nil {
		t.Fatal("foreign record aggregated")
	}
	// Window still needs two matching records.
	p.Admit(aggItem(t, 1, 1))
	if out := p.Admit(aggItem(t, 2, 3)); len(out) != 1 {
		t.Fatal("window broken by foreign record")
	}
}

func TestAggregatingWindowInScheduler(t *testing.T) {
	sched := NewScheduler()
	p, _ := NewAggregatingWindow(aggSchema(), 4)
	var got []Item
	sched.Subscribe(func(q string, it Item) { got = append(got, it) })
	sched.Install("monitor", p)
	for i := int64(1); i <= 8; i++ {
		sched.Ingest(aggItem(t, i, float64(i)))
	}
	if len(got) != 2 {
		t.Fatalf("summaries delivered = %d", len(got))
	}
	if got[0].Payload.Schema.Name != "probe.agg" {
		t.Fatalf("wrong schema: %s", got[0].Payload.Schema.Name)
	}
}
