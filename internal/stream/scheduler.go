package stream

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"fairflow/internal/telemetry"
	"fairflow/internal/telemetry/eventlog"
)

// PunctuationOp enumerates control-channel operations. Punctuation signals
// "abstract divisions between groups of data" and carries the runtime
// steering commands that install and drive policies.
type PunctuationOp string

// Control operations.
const (
	// OpInstall attaches a new policy as a named virtual queue.
	OpInstall PunctuationOp = "install"
	// OpActivate (re-)enables a queue.
	OpActivate PunctuationOp = "activate"
	// OpDeactivate disables a queue without removing it.
	OpDeactivate PunctuationOp = "deactivate"
	// OpRemove detaches a queue entirely, flushing it downstream.
	OpRemove PunctuationOp = "remove"
	// OpSelect addresses a queue's policy directly (direct selection).
	OpSelect PunctuationOp = "select"
	// OpFlush drains a queue's buffered items downstream.
	OpFlush PunctuationOp = "flush"
	// OpMark is a pure data punctuation: a group boundary forwarded to
	// consumers out of band, carrying no scheduler action.
	OpMark PunctuationOp = "mark"
)

// Punctuation is one control-channel message.
type Punctuation struct {
	Op    PunctuationOp
	Queue string
	// Policy carries the policy instance for OpInstall.
	Policy Policy
	// Seqs carries sequence numbers for OpSelect.
	Seqs []int64
	// Label annotates OpMark boundaries.
	Label string
}

// Consumer receives forwarded items from a virtual queue.
type Consumer func(queue string, it Item)

// ContextConsumer receives forwarded items together with the ingesting
// call's trace context: spans the consumer starts from ctx nest under the
// "stream.ingest" span (and through it under whatever span called
// IngestContext), so streamed fan-out renders as one causal tree in the
// Chrome trace.
type ContextConsumer func(ctx context.Context, queue string, it Item)

// VirtualQueueInfo is a snapshot of one queue's state.
type VirtualQueueInfo struct {
	Name      string
	Policy    string
	Active    bool
	Admitted  int64
	Forwarded int64
}

// virtualQueue pairs a policy with delivery state. The telemetry counters
// live on the queue itself (resolved once at install or SetMetrics time) so
// the per-item ingest path never takes the registry lock; nil counters
// swallow updates.
type virtualQueue struct {
	name      string
	policy    Policy
	active    bool
	admitted  int64
	forwarded int64

	mAdmitted  *telemetry.Counter
	mForwarded *telemetry.Counter
	mAbsorbed  *telemetry.Counter
}

// Scheduler is the data-scheduling component of the collection/selection/
// forwarding subgraph (paper Fig. 5): it ingests items from collectors and
// forwards them through any number of simultaneously installed virtual data
// queues, "each defined by its own selection policy", to subscribed
// consumers. All mutation — including policy installation — happens at
// runtime through Punctuate, so steering processes can reshape the workflow
// without regeneration.
type Scheduler struct {
	mu     sync.Mutex
	queues map[string]*virtualQueue
	order  []string
	// consumers is copy-on-write: Subscribe replaces the slice with an
	// extended copy, so readers may publish the header they loaded under mu
	// to goroutine-local use without re-copying per Ingest — the hot path
	// never allocates for consumer fan-out.
	consumers []Consumer
	// ctxConsumers mirrors consumers for context-aware subscribers.
	ctxConsumers []ContextConsumer
	// marks counts OpMark punctuations seen (group boundaries).
	marks int64

	// metrics, when non-nil, labels per-queue counters; queues installed
	// after SetMetrics are wired automatically.
	metrics *telemetry.Registry
	mMarks  *telemetry.Counter
	// tracer, when non-nil, wraps each IngestContext call in a
	// "stream.ingest" span under the caller's context.
	tracer *telemetry.Tracer
	// events, when non-nil, journals punctuation commands ("queue.<op>").
	events *eventlog.Log
}

// NewScheduler returns a scheduler with no queues; a freshly generated
// deployment typically installs ForwardAll as its initial policy.
func NewScheduler() *Scheduler {
	return &Scheduler{queues: map[string]*virtualQueue{}}
}

// SetMetrics registers the scheduler's instruments in reg and starts feeding
// them: stream.items_admitted_total / items_forwarded_total /
// items_absorbed_total, labelled {queue, policy} per virtual queue, plus
// stream.marks_total. Absorbed counts items a policy held back (or dropped)
// at admission; a later flush/select release counts them forwarded. Queues
// already installed are wired retroactively; future installs wire
// automatically. A nil registry is a no-op.
func (s *Scheduler) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = reg
	s.mMarks = reg.Counter("stream.marks_total")
	for _, q := range s.queues {
		s.wireQueue(q)
	}
}

// SetTracer makes IngestContext trace deliveries (nil turns tracing off).
func (s *Scheduler) SetTracer(tr *telemetry.Tracer) {
	s.mu.Lock()
	s.tracer = tr
	s.mu.Unlock()
}

// SetEvents journals punctuation commands into l as "queue.<op>" events
// (nil turns journaling off). Data items are not journaled — they are the
// hot path; the control channel is the story worth keeping.
func (s *Scheduler) SetEvents(l *eventlog.Log) {
	s.mu.Lock()
	s.events = l
	s.mu.Unlock()
}

// wireQueue resolves one queue's counters; callers hold mu.
func (s *Scheduler) wireQueue(q *virtualQueue) {
	if s.metrics == nil {
		return
	}
	labels := []string{"queue", q.name, "policy", q.policy.Name()}
	q.mAdmitted = s.metrics.Counter("stream.items_admitted_total", labels...)
	q.mForwarded = s.metrics.Counter("stream.items_forwarded_total", labels...)
	q.mAbsorbed = s.metrics.Counter("stream.items_absorbed_total", labels...)
}

// Subscribe registers a consumer for all queues' forwarded items. The
// consumer list is copied here, at subscription time (rare), never on the
// per-item ingest path (hot).
func (s *Scheduler) Subscribe(c Consumer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := make([]Consumer, len(s.consumers)+1)
	copy(next, s.consumers)
	next[len(s.consumers)] = c
	s.consumers = next
}

// SubscribeContext registers a context-aware consumer. Items ingested via
// IngestContext arrive with the ingest span's context; items delivered from
// punctuation (flush/select/remove) or plain Ingest arrive with
// context.Background().
func (s *Scheduler) SubscribeContext(c ContextConsumer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := make([]ContextConsumer, len(s.ctxConsumers)+1)
	copy(next, s.ctxConsumers)
	next[len(s.ctxConsumers)] = c
	s.ctxConsumers = next
}

// Install is shorthand for Punctuate(OpInstall).
func (s *Scheduler) Install(queue string, p Policy) error {
	return s.Punctuate(Punctuation{Op: OpInstall, Queue: queue, Policy: p})
}

// Ingest feeds one item to every active virtual queue. The common cases —
// no queue forwards (a filtering policy absorbing the item) or exactly one
// queue forwards — allocate nothing beyond what the policy itself returns.
func (s *Scheduler) Ingest(it Item) {
	s.IngestContext(context.Background(), it)
}

// IngestContext is Ingest carrying trace context: when a tracer is set, the
// whole admit-and-deliver pass runs inside a "stream.ingest" span parented
// under ctx's span, and context-aware consumers receive the span's context —
// so work a consumer does for a streamed item nests under the ingesting
// operation in the exported trace.
func (s *Scheduler) IngestContext(ctx context.Context, it Item) {
	type delivery struct {
		queue string
		items []Item
	}
	s.mu.Lock()
	tracer, events := s.tracer, s.events
	// First forwarding queue is kept inline; a spill slice is only
	// allocated when two or more queues forward on the same item.
	var first delivery
	var spill []delivery
	for _, name := range s.order {
		q := s.queues[name]
		if !q.active {
			continue
		}
		q.admitted++
		q.mAdmitted.Inc()
		if out := q.policy.Admit(it); len(out) > 0 {
			q.forwarded += int64(len(out))
			q.mForwarded.Add(int64(len(out)))
			if first.items == nil {
				first = delivery{name, out}
			} else {
				spill = append(spill, delivery{name, out})
			}
		} else {
			q.mAbsorbed.Inc()
			if events.Enabled(eventlog.Debug) {
				events.Append(eventlog.Debug, eventlog.QueueAbsorbed, "", 0,
					telemetry.String("queue", name), telemetry.Int("seq", int(it.Seq)))
			}
		}
	}
	consumers := s.consumers // copy-on-write: safe to use after unlock
	ctxConsumers := s.ctxConsumers
	s.mu.Unlock()

	if first.items == nil {
		return
	}
	if tracer != nil {
		var span *telemetry.Span
		ctx, span = tracer.Start(ctx, "stream.ingest",
			telemetry.String("queue", first.queue), telemetry.Int("seq", int(it.Seq)))
		defer span.End()
	}
	// Deliver outside the lock so consumers may call back into the
	// scheduler (e.g. a steering consumer issuing punctuation).
	for _, c := range consumers {
		for _, it := range first.items {
			c(first.queue, it)
		}
	}
	for _, c := range ctxConsumers {
		for _, it := range first.items {
			c(ctx, first.queue, it)
		}
	}
	for _, d := range spill {
		for _, c := range consumers {
			for _, it := range d.items {
				c(d.queue, it)
			}
		}
		for _, c := range ctxConsumers {
			for _, it := range d.items {
				c(ctx, d.queue, it)
			}
		}
	}
}

// Punctuate applies one control message. Unknown queues are an error except
// for OpMark, which is queue-independent.
func (s *Scheduler) Punctuate(cmd Punctuation) error {
	s.mu.Lock()
	events := s.events
	var released []Item
	var queueName string
	switch cmd.Op {
	case OpMark:
		s.marks++
		s.mMarks.Inc()
		s.mu.Unlock()
		events.Append(eventlog.Info, "queue."+string(OpMark), cmd.Label, 0)
		return nil
	case OpInstall:
		if cmd.Queue == "" || cmd.Policy == nil {
			s.mu.Unlock()
			return fmt.Errorf("stream: install needs a queue name and a policy")
		}
		if _, dup := s.queues[cmd.Queue]; dup {
			s.mu.Unlock()
			return fmt.Errorf("stream: queue %q already installed", cmd.Queue)
		}
		q := &virtualQueue{name: cmd.Queue, policy: cmd.Policy, active: true}
		s.wireQueue(q)
		s.queues[cmd.Queue] = q
		s.order = append(s.order, cmd.Queue)
		s.mu.Unlock()
		events.Append(eventlog.Info, "queue."+string(OpInstall), "", 0,
			telemetry.String("queue", cmd.Queue), telemetry.String("policy", cmd.Policy.Name()))
		return nil
	default:
		q, ok := s.queues[cmd.Queue]
		if !ok {
			s.mu.Unlock()
			return fmt.Errorf("stream: unknown queue %q", cmd.Queue)
		}
		queueName = q.name
		switch cmd.Op {
		case OpActivate:
			q.active = true
		case OpDeactivate:
			q.active = false
		case OpRemove:
			released = q.policy.Flush()
			q.forwarded += int64(len(released))
			q.mForwarded.Add(int64(len(released)))
			delete(s.queues, cmd.Queue)
			for i, n := range s.order {
				if n == cmd.Queue {
					s.order = append(s.order[:i], s.order[i+1:]...)
					break
				}
			}
		case OpFlush:
			released = q.policy.Flush()
			q.forwarded += int64(len(released))
			q.mForwarded.Add(int64(len(released)))
		case OpSelect:
			released = q.policy.Control(cmd)
			q.forwarded += int64(len(released))
			q.mForwarded.Add(int64(len(released)))
		default:
			s.mu.Unlock()
			return fmt.Errorf("stream: unknown punctuation op %q", cmd.Op)
		}
	}
	consumers := s.consumers // copy-on-write: safe to use after unlock
	ctxConsumers := s.ctxConsumers
	s.mu.Unlock()

	events.Append(eventlog.Info, "queue."+string(cmd.Op), "", 0,
		telemetry.String("queue", queueName), telemetry.Int("released", len(released)))
	for _, c := range consumers {
		for _, it := range released {
			c(queueName, it)
		}
	}
	for _, c := range ctxConsumers {
		for _, it := range released {
			c(context.Background(), queueName, it)
		}
	}
	return nil
}

// Queues returns a snapshot of all installed queues, sorted by name.
func (s *Scheduler) Queues() []VirtualQueueInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]VirtualQueueInfo, 0, len(s.queues))
	for _, q := range s.queues {
		out = append(out, VirtualQueueInfo{
			Name: q.name, Policy: q.policy.Name(), Active: q.active,
			Admitted: q.admitted, Forwarded: q.forwarded,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Marks reports the number of group-boundary punctuations observed.
func (s *Scheduler) Marks() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.marks
}

// ApplyPunctuationScript reads JSON-lines of WirePunctuation (the format
// Skel-generated deployment files use) and applies each to the scheduler in
// order, returning how many commands were applied. Blank lines and lines
// starting with '#' are skipped, so generated scripts can carry comments.
func ApplyPunctuationScript(r io.Reader, s *Scheduler) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	applied := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var wp WirePunctuation
		if err := json.Unmarshal([]byte(text), &wp); err != nil {
			return applied, fmt.Errorf("stream: deployment line %d: %w", line, err)
		}
		p, err := wp.ToPunctuation()
		if err != nil {
			return applied, fmt.Errorf("stream: deployment line %d: %w", line, err)
		}
		if err := s.Punctuate(p); err != nil {
			return applied, fmt.Errorf("stream: deployment line %d: %w", line, err)
		}
		applied++
	}
	return applied, sc.Err()
}

// Replay decodes an FBS stream and ingests every item into the scheduler —
// the file-based re-run path: a captured instrument stream can be pushed
// back through a (re)configured workflow graph. Returns the item count.
func Replay(r io.Reader, s *Scheduler) (int, error) {
	dec := NewDecoder(r)
	n := 0
	for {
		it, err := dec.Decode()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		s.Ingest(it)
		n++
	}
}
