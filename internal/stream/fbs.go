package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"
)

// FBS ("fairflow binary stream") is a small self-describing binary format:
// every stream begins with its schema, then carries length-delimited record
// frames. A reader needs no compiled-in knowledge of the layout — the
// data-schema gauge's "self-describing binary" tier made concrete.
//
// Wire layout (all integers little-endian):
//
//	stream  := magic(4) version(u8) schema record*
//	schema  := nameLen(u16) name fieldCount(u16) field*
//	field   := type(u8) nameLen(u16) name
//	record  := marker(u8=0x52) seq(i64) unixNano(i64) value*
//	value   := depends on field type; strings/bytes are u32-length-prefixed
var fbsMagic = [4]byte{'F', 'B', 'S', '1'}

const fbsVersion = 1
const recordMarker = 0x52

// maxBlob bounds string/bytes fields (16 MiB) to fail fast on corrupt
// streams rather than allocating absurd buffers.
const maxBlob = 16 << 20

// Encoder writes an FBS stream.
type Encoder struct {
	w      *bufio.Writer
	schema *Schema
	wrote  bool
}

// NewEncoder creates an encoder bound to one schema per stream.
func NewEncoder(w io.Writer, schema *Schema) (*Encoder, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	return &Encoder{w: bufio.NewWriter(w), schema: schema}, nil
}

func (e *Encoder) writeHeader() error {
	if _, err := e.w.Write(fbsMagic[:]); err != nil {
		return err
	}
	if err := e.w.WriteByte(fbsVersion); err != nil {
		return err
	}
	if err := writeString16(e.w, e.schema.Name); err != nil {
		return err
	}
	if err := binary.Write(e.w, binary.LittleEndian, uint16(len(e.schema.Fields))); err != nil {
		return err
	}
	for _, f := range e.schema.Fields {
		if err := e.w.WriteByte(byte(f.Type)); err != nil {
			return err
		}
		if err := writeString16(e.w, f.Name); err != nil {
			return err
		}
	}
	e.wrote = true
	return nil
}

// Encode appends one item to the stream (writing the header first if
// needed). The item's record must match the encoder's schema.
func (e *Encoder) Encode(it Item) error {
	if it.Payload.Schema == nil || !it.Payload.Schema.Equal(*e.schema) {
		return fmt.Errorf("stream: item schema does not match encoder schema")
	}
	if err := it.Payload.Validate(); err != nil {
		return err
	}
	if !e.wrote {
		if err := e.writeHeader(); err != nil {
			return err
		}
	}
	if err := e.w.WriteByte(recordMarker); err != nil {
		return err
	}
	if err := binary.Write(e.w, binary.LittleEndian, it.Seq); err != nil {
		return err
	}
	if err := binary.Write(e.w, binary.LittleEndian, it.Time.UnixNano()); err != nil {
		return err
	}
	for i, f := range e.schema.Fields {
		switch f.Type {
		case TInt64:
			if err := binary.Write(e.w, binary.LittleEndian, it.Payload.Values[i].(int64)); err != nil {
				return err
			}
		case TFloat64:
			bits := math.Float64bits(it.Payload.Values[i].(float64))
			if err := binary.Write(e.w, binary.LittleEndian, bits); err != nil {
				return err
			}
		case TString:
			if err := writeBlob32(e.w, []byte(it.Payload.Values[i].(string))); err != nil {
				return err
			}
		case TBytes:
			if err := writeBlob32(e.w, it.Payload.Values[i].([]byte)); err != nil {
				return err
			}
		case TBool:
			b := byte(0)
			if it.Payload.Values[i].(bool) {
				b = 1
			}
			if err := e.w.WriteByte(b); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush pushes buffered bytes to the underlying writer. Transports call
// this per message; file writers once at the end.
func (e *Encoder) Flush() error { return e.w.Flush() }

// Decoder reads an FBS stream, discovering the schema from the wire.
type Decoder struct {
	r      *bufio.Reader
	schema *Schema
}

// NewDecoder wraps a reader; the schema is parsed lazily on first use.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// Schema returns the stream's schema, reading the header if necessary.
func (d *Decoder) Schema() (*Schema, error) {
	if d.schema != nil {
		return d.schema, nil
	}
	// io.ReadFull reports io.EOF only when zero bytes were read — the one
	// genuinely clean way for a stream to end before its header. Every
	// later EOF in the header is a torn frame and surfaces as
	// io.ErrUnexpectedEOF, so callers never mistake a truncated header for
	// an empty stream.
	var magic [4]byte
	if _, err := io.ReadFull(d.r, magic[:]); err != nil {
		return nil, err
	}
	if magic != fbsMagic {
		return nil, fmt.Errorf("stream: bad magic %q", magic)
	}
	version, err := d.r.ReadByte()
	if err != nil {
		return nil, corrupt(err)
	}
	if version != fbsVersion {
		return nil, fmt.Errorf("stream: unsupported FBS version %d", version)
	}
	name, err := readString16(d.r)
	if err != nil {
		return nil, corrupt(err)
	}
	var count uint16
	if err := binary.Read(d.r, binary.LittleEndian, &count); err != nil {
		return nil, corrupt(err)
	}
	s := &Schema{Name: name}
	for i := 0; i < int(count); i++ {
		tb, err := d.r.ReadByte()
		if err != nil {
			return nil, corrupt(err)
		}
		fname, err := readString16(d.r)
		if err != nil {
			return nil, corrupt(err)
		}
		s.Fields = append(s.Fields, Field{Name: fname, Type: FieldType(tb)})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	d.schema = s
	return s, nil
}

// Decode reads the next item. io.EOF marks a clean end of stream.
func (d *Decoder) Decode() (Item, error) {
	s, err := d.Schema()
	if err != nil {
		return Item{}, err
	}
	marker, err := d.r.ReadByte()
	if err != nil {
		return Item{}, err // io.EOF passes through
	}
	if marker != recordMarker {
		return Item{}, fmt.Errorf("stream: bad record marker 0x%02x", marker)
	}
	var it Item
	if err := binary.Read(d.r, binary.LittleEndian, &it.Seq); err != nil {
		return Item{}, corrupt(err)
	}
	var nanos int64
	if err := binary.Read(d.r, binary.LittleEndian, &nanos); err != nil {
		return Item{}, corrupt(err)
	}
	it.Time = time.Unix(0, nanos).UTC()
	values := make([]any, len(s.Fields))
	for i, f := range s.Fields {
		switch f.Type {
		case TInt64:
			var v int64
			if err := binary.Read(d.r, binary.LittleEndian, &v); err != nil {
				return Item{}, corrupt(err)
			}
			values[i] = v
		case TFloat64:
			var bits uint64
			if err := binary.Read(d.r, binary.LittleEndian, &bits); err != nil {
				return Item{}, corrupt(err)
			}
			values[i] = math.Float64frombits(bits)
		case TString:
			b, err := readBlob32(d.r)
			if err != nil {
				return Item{}, corrupt(err)
			}
			values[i] = string(b)
		case TBytes:
			b, err := readBlob32(d.r)
			if err != nil {
				return Item{}, corrupt(err)
			}
			values[i] = b
		case TBool:
			b, err := d.r.ReadByte()
			if err != nil {
				return Item{}, corrupt(err)
			}
			values[i] = b != 0
		}
	}
	it.Payload = Record{Schema: s, Values: values}
	return it, nil
}

// corrupt converts a mid-record EOF into ErrUnexpectedEOF so callers can
// distinguish truncation from clean stream end.
func corrupt(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func writeString16(w *bufio.Writer, s string) error {
	if len(s) > math.MaxUint16 {
		return fmt.Errorf("stream: name too long (%d bytes)", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString16(r *bufio.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeBlob32(w *bufio.Writer, b []byte) error {
	if len(b) > maxBlob {
		return fmt.Errorf("stream: blob too large (%d bytes)", len(b))
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readBlob32(r *bufio.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxBlob {
		return nil, fmt.Errorf("stream: blob length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
