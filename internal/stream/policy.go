package stream

import (
	"fmt"
	"time"
)

// Policy is a data-scheduling policy: it decides, per arriving item, what a
// virtual queue forwards downstream. Policies may buffer (windows, selection
// queues); Flush drains whatever a policy is still holding.
//
// Policies are installed and swapped at runtime via control punctuation —
// "including policies not known at code generation or compile time"
// (Section V-C). The communication code around them never changes; only the
// policy does.
type Policy interface {
	// Admit processes one arriving item and returns the items to forward
	// now (possibly none, possibly buffered earlier items).
	Admit(it Item) []Item
	// Control lets a policy react to punctuation addressed to it (e.g. the
	// direct-selection policy's "select seq N"). Unknown commands are
	// ignored and return nil.
	Control(cmd Punctuation) []Item
	// Flush returns any buffered items and resets the policy.
	Flush() []Item
	// Name identifies the policy instance.
	Name() string
}

// ForwardAll is the simplest policy: forward every item immediately.
type ForwardAll struct{}

// Admit implements Policy.
func (ForwardAll) Admit(it Item) []Item { return []Item{it} }

// Control implements Policy.
func (ForwardAll) Control(Punctuation) []Item { return nil }

// Flush implements Policy.
func (ForwardAll) Flush() []Item { return nil }

// Name implements Policy.
func (ForwardAll) Name() string { return "forward-all" }

// SlidingWindowCount buffers items and, every Stride arrivals once Size
// items are buffered, forwards a copy of the current window (oldest first).
// With Stride == Size it behaves as a tumbling window.
type SlidingWindowCount struct {
	Size   int
	Stride int

	buf     []Item
	arrived int
}

// NewSlidingWindowCount validates and builds a count-based window policy.
func NewSlidingWindowCount(size, stride int) (*SlidingWindowCount, error) {
	if size < 1 || stride < 1 {
		return nil, fmt.Errorf("stream: window size and stride must be ≥1 (got %d, %d)", size, stride)
	}
	return &SlidingWindowCount{Size: size, Stride: stride}, nil
}

// Admit implements Policy.
func (p *SlidingWindowCount) Admit(it Item) []Item {
	p.buf = append(p.buf, it)
	if len(p.buf) > p.Size {
		p.buf = p.buf[len(p.buf)-p.Size:]
	}
	p.arrived++
	if len(p.buf) == p.Size && p.arrived%p.Stride == 0 {
		return append([]Item(nil), p.buf...)
	}
	return nil
}

// Control implements Policy.
func (p *SlidingWindowCount) Control(Punctuation) []Item { return nil }

// Flush implements Policy.
func (p *SlidingWindowCount) Flush() []Item {
	out := p.buf
	p.buf = nil
	p.arrived = 0
	return out
}

// Name implements Policy.
func (p *SlidingWindowCount) Name() string {
	return fmt.Sprintf("sliding-window-count(%d/%d)", p.Size, p.Stride)
}

// SlidingWindowTime forwards, on each arrival, the set of buffered items
// whose timestamps fall within Span of the newest item — a time-based
// sliding window.
type SlidingWindowTime struct {
	Span time.Duration

	buf []Item
}

// NewSlidingWindowTime validates and builds a time-based window policy.
func NewSlidingWindowTime(span time.Duration) (*SlidingWindowTime, error) {
	if span <= 0 {
		return nil, fmt.Errorf("stream: window span must be positive")
	}
	return &SlidingWindowTime{Span: span}, nil
}

// Admit implements Policy.
func (p *SlidingWindowTime) Admit(it Item) []Item {
	p.buf = append(p.buf, it)
	cutoff := it.Time.Add(-p.Span)
	keep := p.buf[:0]
	for _, b := range p.buf {
		if !b.Time.Before(cutoff) {
			keep = append(keep, b)
		}
	}
	p.buf = keep
	return append([]Item(nil), p.buf...)
}

// Control implements Policy.
func (p *SlidingWindowTime) Control(Punctuation) []Item { return nil }

// Flush implements Policy.
func (p *SlidingWindowTime) Flush() []Item {
	out := p.buf
	p.buf = nil
	return out
}

// Name implements Policy.
func (p *SlidingWindowTime) Name() string {
	return fmt.Sprintf("sliding-window-time(%s)", p.Span)
}

// DirectSelection queues arriving items and forwards nothing until a
// control punctuation selects specific sequence numbers — the paper's
// "direct selection of queued data items" installed from a remote steering
// process. Selected items leave the queue; a Capacity bound evicts the
// oldest unselected items.
type DirectSelection struct {
	Capacity int

	queue []Item
}

// NewDirectSelection builds a selection policy with the given queue bound.
func NewDirectSelection(capacity int) (*DirectSelection, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("stream: selection capacity must be ≥1")
	}
	return &DirectSelection{Capacity: capacity}, nil
}

// Admit implements Policy: items are queued, never auto-forwarded.
func (p *DirectSelection) Admit(it Item) []Item {
	p.queue = append(p.queue, it)
	if len(p.queue) > p.Capacity {
		p.queue = p.queue[len(p.queue)-p.Capacity:]
	}
	return nil
}

// Control implements Policy: OpSelect punctuation with sequence numbers
// releases the matching queued items, in queue order.
func (p *DirectSelection) Control(cmd Punctuation) []Item {
	if cmd.Op != OpSelect {
		return nil
	}
	want := map[int64]bool{}
	for _, s := range cmd.Seqs {
		want[s] = true
	}
	var out []Item
	keep := p.queue[:0]
	for _, it := range p.queue {
		if want[it.Seq] {
			out = append(out, it)
		} else {
			keep = append(keep, it)
		}
	}
	p.queue = keep
	return out
}

// Flush implements Policy.
func (p *DirectSelection) Flush() []Item {
	out := p.queue
	p.queue = nil
	return out
}

// Name implements Policy.
func (p *DirectSelection) Name() string {
	return fmt.Sprintf("direct-selection(cap=%d)", p.Capacity)
}

// SampleEveryN forwards every Nth item — a decimation policy for monitoring
// consumers.
type SampleEveryN struct {
	N int

	count int
}

// NewSampleEveryN builds a decimation policy.
func NewSampleEveryN(n int) (*SampleEveryN, error) {
	if n < 1 {
		return nil, fmt.Errorf("stream: sample interval must be ≥1")
	}
	return &SampleEveryN{N: n}, nil
}

// Admit implements Policy.
func (p *SampleEveryN) Admit(it Item) []Item {
	p.count++
	if p.count%p.N == 0 {
		return []Item{it}
	}
	return nil
}

// Control implements Policy.
func (p *SampleEveryN) Control(Punctuation) []Item { return nil }

// Flush implements Policy.
func (p *SampleEveryN) Flush() []Item {
	p.count = 0
	return nil
}

// Name implements Policy.
func (p *SampleEveryN) Name() string { return fmt.Sprintf("sample-every(%d)", p.N) }
