package stream

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func sensorSchema() *Schema {
	return &Schema{
		Name: "sensor",
		Fields: []Field{
			{Name: "id", Type: TInt64},
			{Name: "value", Type: TFloat64},
			{Name: "unit", Type: TString},
			{Name: "raw", Type: TBytes},
			{Name: "valid", Type: TBool},
		},
	}
}

func sensorItem(t *testing.T, seq int64) Item {
	t.Helper()
	rec, err := NewRecord(sensorSchema(), seq*10, float64(seq)*1.5, "K", []byte{1, 2, byte(seq)}, seq%2 == 0)
	if err != nil {
		t.Fatal(err)
	}
	return Item{Seq: seq, Time: time.Unix(1000+seq, 500).UTC(), Payload: rec}
}

func TestSchemaValidate(t *testing.T) {
	if err := sensorSchema().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Schema{
		{Fields: []Field{{Name: "a", Type: TInt64}}}, // no name
		{Name: "x"}, // no fields
		{Name: "x", Fields: []Field{{Type: TInt64}}},                                      // unnamed field
		{Name: "x", Fields: []Field{{Name: "a", Type: TInt64}, {Name: "a", Type: TBool}}}, // dup
		{Name: "x", Fields: []Field{{Name: "a", Type: 99}}},                               // bad type
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("bad schema %d accepted", i)
		}
	}
}

func TestRecordValidateTypes(t *testing.T) {
	s := sensorSchema()
	if _, err := NewRecord(s, int64(1), 2.0, "u", []byte{}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRecord(s, 1, 2.0, "u", []byte{}, true); err == nil {
		t.Fatal("int accepted for int64 field")
	}
	if _, err := NewRecord(s, int64(1), 2.0, "u", []byte{}); err == nil {
		t.Fatal("short value tuple accepted")
	}
	r := Record{}
	if r.Validate() == nil {
		t.Fatal("schema-less record accepted")
	}
}

func TestRecordGet(t *testing.T) {
	it := sensorItem(t, 3)
	v, err := it.Payload.Get("value")
	if err != nil || v.(float64) != 4.5 {
		t.Fatalf("Get(value) = %v, %v", v, err)
	}
	if _, err := it.Payload.Get("missing"); err == nil {
		t.Fatal("missing field lookup succeeded")
	}
}

func TestFBSRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, sensorSchema())
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := int64(0); i < n; i++ {
		if err := enc.Encode(sensorItem(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}

	dec := NewDecoder(&buf)
	schema, err := dec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if !schema.Equal(*sensorSchema()) {
		t.Fatalf("decoded schema differs: %+v", schema)
	}
	for i := int64(0); i < n; i++ {
		it, err := dec.Decode()
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		want := sensorItem(t, i)
		if it.Seq != want.Seq || !it.Time.Equal(want.Time) {
			t.Fatalf("item %d header mismatch: %+v", i, it)
		}
		for f := range want.Payload.Values {
			switch wv := want.Payload.Values[f].(type) {
			case []byte:
				if !bytes.Equal(wv, it.Payload.Values[f].([]byte)) {
					t.Fatalf("item %d field %d bytes mismatch", i, f)
				}
			default:
				if it.Payload.Values[f] != wv {
					t.Fatalf("item %d field %d: %v != %v", i, f, it.Payload.Values[f], wv)
				}
			}
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func TestFBSTruncationIsUnexpectedEOF(t *testing.T) {
	var buf bytes.Buffer
	enc, _ := NewEncoder(&buf, sensorSchema())
	enc.Encode(sensorItem(t, 1))
	enc.Flush()
	data := buf.Bytes()
	dec := NewDecoder(bytes.NewReader(data[:len(data)-3]))
	if _, err := dec.Decode(); err != io.ErrUnexpectedEOF {
		t.Fatalf("expected ErrUnexpectedEOF, got %v", err)
	}
}

func TestFBSBadMagic(t *testing.T) {
	dec := NewDecoder(bytes.NewReader([]byte("NOPE....")))
	if _, err := dec.Schema(); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestFBSSchemaMismatchOnEncode(t *testing.T) {
	var buf bytes.Buffer
	enc, _ := NewEncoder(&buf, sensorSchema())
	other := &Schema{Name: "other", Fields: []Field{{Name: "x", Type: TInt64}}}
	rec, _ := NewRecord(other, int64(1))
	if err := enc.Encode(Item{Payload: rec}); err == nil {
		t.Fatal("wrong-schema item encoded")
	}
}

func TestFBSOversizedBlobRejected(t *testing.T) {
	s := &Schema{Name: "b", Fields: []Field{{Name: "d", Type: TBytes}}}
	var buf bytes.Buffer
	enc, _ := NewEncoder(&buf, s)
	rec, _ := NewRecord(s, make([]byte, maxBlob+1))
	if err := enc.Encode(Item{Payload: rec}); err == nil {
		t.Fatal("oversized blob encoded")
	}
}

func TestFBSPropertyRoundTrip(t *testing.T) {
	s := &Schema{Name: "q", Fields: []Field{
		{Name: "i", Type: TInt64},
		{Name: "f", Type: TFloat64},
		{Name: "s", Type: TString},
	}}
	f := func(i int64, fv float64, sv string, seq int64, nanos int64) bool {
		rec, err := NewRecord(s, i, fv, sv)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		enc, _ := NewEncoder(&buf, s)
		if enc.Encode(Item{Seq: seq, Time: time.Unix(0, nanos), Payload: rec}) != nil {
			return false
		}
		enc.Flush()
		it, err := NewDecoder(&buf).Decode()
		if err != nil {
			return false
		}
		// NaN float payloads cannot compare equal; encode bits instead.
		same := it.Seq == seq && it.Time.UnixNano() == nanos &&
			it.Payload.Values[0] == i && it.Payload.Values[2] == sv
		got := it.Payload.Values[1].(float64)
		if fv != fv { // NaN
			return same && got != got
		}
		return same && got == fv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
