package stream

import (
	"sync"
	"testing"
	"time"
)

func intSchema() *Schema {
	return &Schema{Name: "n", Fields: []Field{{Name: "v", Type: TInt64}}}
}

func intItem(t *testing.T, seq int64) Item {
	t.Helper()
	rec, err := NewRecord(intSchema(), seq)
	if err != nil {
		t.Fatal(err)
	}
	return Item{Seq: seq, Time: time.Unix(seq, 0), Payload: rec}
}

func TestForwardAllPolicy(t *testing.T) {
	p := ForwardAll{}
	it := intItem(t, 1)
	out := p.Admit(it)
	if len(out) != 1 || out[0].Seq != 1 {
		t.Fatalf("forward-all: %v", out)
	}
	if p.Flush() != nil || p.Control(Punctuation{Op: OpSelect}) != nil {
		t.Fatal("forward-all buffered something")
	}
}

func TestSlidingWindowCountTumbling(t *testing.T) {
	p, err := NewSlidingWindowCount(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	var emissions [][]Item
	for i := int64(1); i <= 9; i++ {
		if out := p.Admit(intItem(t, i)); out != nil {
			emissions = append(emissions, out)
		}
	}
	if len(emissions) != 3 {
		t.Fatalf("tumbling window emitted %d times", len(emissions))
	}
	if emissions[1][0].Seq != 4 || emissions[1][2].Seq != 6 {
		t.Fatalf("second window: %v", emissions[1])
	}
}

func TestSlidingWindowCountSliding(t *testing.T) {
	p, _ := NewSlidingWindowCount(3, 1)
	var count int
	for i := int64(1); i <= 5; i++ {
		if out := p.Admit(intItem(t, i)); out != nil {
			count++
			if len(out) != 3 {
				t.Fatalf("window size %d", len(out))
			}
		}
	}
	// Windows complete at arrivals 3,4,5.
	if count != 3 {
		t.Fatalf("slide count = %d", count)
	}
	flushed := p.Flush()
	if len(flushed) != 3 {
		t.Fatalf("flush returned %d", len(flushed))
	}
	if out := p.Admit(intItem(t, 9)); out != nil {
		t.Fatal("window not reset by flush")
	}
}

func TestSlidingWindowValidation(t *testing.T) {
	if _, err := NewSlidingWindowCount(0, 1); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := NewSlidingWindowCount(1, 0); err == nil {
		t.Fatal("zero stride accepted")
	}
	if _, err := NewSlidingWindowTime(0); err == nil {
		t.Fatal("zero span accepted")
	}
}

func TestSlidingWindowTimeEvictsOld(t *testing.T) {
	p, _ := NewSlidingWindowTime(5 * time.Second)
	p.Admit(intItem(t, 1)) // t=1s
	p.Admit(intItem(t, 3)) // t=3s
	out := p.Admit(intItem(t, 10))
	if len(out) != 1 || out[0].Seq != 10 {
		t.Fatalf("time window kept stale items: %v", out)
	}
	out = p.Admit(intItem(t, 12))
	if len(out) != 2 {
		t.Fatalf("time window: %v", out)
	}
}

func TestDirectSelectionHoldsUntilSelected(t *testing.T) {
	p, err := NewDirectSelection(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		if out := p.Admit(intItem(t, i)); out != nil {
			t.Fatal("selection auto-forwarded")
		}
	}
	out := p.Control(Punctuation{Op: OpSelect, Seqs: []int64{2, 4}})
	if len(out) != 2 || out[0].Seq != 2 || out[1].Seq != 4 {
		t.Fatalf("selected: %v", out)
	}
	// Selected items left the queue.
	if again := p.Control(Punctuation{Op: OpSelect, Seqs: []int64{2}}); len(again) != 0 {
		t.Fatal("item selected twice")
	}
	if rest := p.Flush(); len(rest) != 3 {
		t.Fatalf("flush returned %d", len(rest))
	}
}

func TestDirectSelectionCapacityEvicts(t *testing.T) {
	p, _ := NewDirectSelection(3)
	for i := int64(1); i <= 5; i++ {
		p.Admit(intItem(t, i))
	}
	if out := p.Control(Punctuation{Op: OpSelect, Seqs: []int64{1}}); len(out) != 0 {
		t.Fatal("evicted item still selectable")
	}
	if out := p.Control(Punctuation{Op: OpSelect, Seqs: []int64{5}}); len(out) != 1 {
		t.Fatal("recent item lost")
	}
	if _, err := NewDirectSelection(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestSampleEveryN(t *testing.T) {
	p, err := NewSampleEveryN(3)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for i := int64(1); i <= 9; i++ {
		for _, it := range p.Admit(intItem(t, i)) {
			got = append(got, it.Seq)
		}
	}
	if len(got) != 3 || got[0] != 3 || got[2] != 9 {
		t.Fatalf("sampled: %v", got)
	}
	if _, err := NewSampleEveryN(0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestSchedulerInstallAndIngest(t *testing.T) {
	s := NewScheduler()
	var mu sync.Mutex
	got := map[string][]int64{}
	s.Subscribe(func(q string, it Item) {
		mu.Lock()
		got[q] = append(got[q], it.Seq)
		mu.Unlock()
	})
	if err := s.Install("all", ForwardAll{}); err != nil {
		t.Fatal(err)
	}
	samp, _ := NewSampleEveryN(2)
	if err := s.Install("sampled", samp); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 4; i++ {
		s.Ingest(intItem(t, i))
	}
	if len(got["all"]) != 4 || len(got["sampled"]) != 2 {
		t.Fatalf("deliveries: %v", got)
	}
	infos := s.Queues()
	if len(infos) != 2 || infos[0].Name != "all" || infos[0].Admitted != 4 {
		t.Fatalf("queue info: %+v", infos)
	}
}

func TestSchedulerInstallValidation(t *testing.T) {
	s := NewScheduler()
	if err := s.Install("", ForwardAll{}); err == nil {
		t.Fatal("empty queue name accepted")
	}
	if err := s.Punctuate(Punctuation{Op: OpInstall, Queue: "q"}); err == nil {
		t.Fatal("nil policy accepted")
	}
	if err := s.Install("q", ForwardAll{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Install("q", ForwardAll{}); err == nil {
		t.Fatal("duplicate queue accepted")
	}
	if err := s.Punctuate(Punctuation{Op: OpFlush, Queue: "ghost"}); err == nil {
		t.Fatal("unknown queue accepted")
	}
	if err := s.Punctuate(Punctuation{Op: "warp", Queue: "q"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestSchedulerActivateDeactivate(t *testing.T) {
	s := NewScheduler()
	var n int
	s.Subscribe(func(string, Item) { n++ })
	s.Install("q", ForwardAll{})
	s.Ingest(intItem(t, 1))
	if err := s.Punctuate(Punctuation{Op: OpDeactivate, Queue: "q"}); err != nil {
		t.Fatal(err)
	}
	s.Ingest(intItem(t, 2))
	if err := s.Punctuate(Punctuation{Op: OpActivate, Queue: "q"}); err != nil {
		t.Fatal(err)
	}
	s.Ingest(intItem(t, 3))
	if n != 2 {
		t.Fatalf("deliveries = %d, want 2 (deactivated item skipped)", n)
	}
}

func TestSchedulerRuntimePolicySwap(t *testing.T) {
	// The Fig. 5 scenario: start with forward-all, then a steering process
	// installs a direct-selection queue at runtime and pulls one item out.
	s := NewScheduler()
	var mu sync.Mutex
	got := map[string][]int64{}
	s.Subscribe(func(q string, it Item) {
		mu.Lock()
		got[q] = append(got[q], it.Seq)
		mu.Unlock()
	})
	s.Install("live", ForwardAll{})
	s.Ingest(intItem(t, 1))

	sel, _ := NewDirectSelection(100)
	if err := s.Punctuate(Punctuation{Op: OpInstall, Queue: "steered", Policy: sel}); err != nil {
		t.Fatal(err)
	}
	for i := int64(2); i <= 6; i++ {
		s.Ingest(intItem(t, i))
	}
	if err := s.Punctuate(Punctuation{Op: OpSelect, Queue: "steered", Seqs: []int64{4}}); err != nil {
		t.Fatal(err)
	}
	if len(got["live"]) != 6 {
		t.Fatalf("live queue: %v", got["live"])
	}
	if len(got["steered"]) != 1 || got["steered"][0] != 4 {
		t.Fatalf("steered queue: %v", got["steered"])
	}
}

func TestSchedulerRemoveFlushesDownstream(t *testing.T) {
	s := NewScheduler()
	var got []int64
	s.Subscribe(func(q string, it Item) { got = append(got, it.Seq) })
	win, _ := NewSlidingWindowCount(10, 10)
	s.Install("w", win)
	s.Ingest(intItem(t, 1))
	s.Ingest(intItem(t, 2))
	if err := s.Punctuate(Punctuation{Op: OpRemove, Queue: "w"}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("remove did not flush buffered items: %v", got)
	}
	if len(s.Queues()) != 0 {
		t.Fatal("queue not removed")
	}
	s.Ingest(intItem(t, 3))
	if len(got) != 2 {
		t.Fatal("removed queue still forwarding")
	}
}

func TestSchedulerMarks(t *testing.T) {
	s := NewScheduler()
	if err := s.Punctuate(Punctuation{Op: OpMark, Label: "group-1"}); err != nil {
		t.Fatal(err)
	}
	if s.Marks() != 1 {
		t.Fatalf("marks = %d", s.Marks())
	}
}

func TestSchedulerConcurrentIngest(t *testing.T) {
	s := NewScheduler()
	var mu sync.Mutex
	var n int
	s.Subscribe(func(string, Item) {
		mu.Lock()
		n++
		mu.Unlock()
	})
	s.Install("all", ForwardAll{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Ingest(intItem(t, int64(g*1000+i)))
			}
		}(g)
	}
	wg.Wait()
	if n != 1600 {
		t.Fatalf("deliveries = %d", n)
	}
	infos := s.Queues()
	if infos[0].Admitted != 1600 || infos[0].Forwarded != 1600 {
		t.Fatalf("counters: %+v", infos[0])
	}
}
