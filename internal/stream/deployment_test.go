package stream

import (
	"bytes"
	"strings"
	"testing"
)

func TestApplyPunctuationScript(t *testing.T) {
	script := `
# generated deployment
{"op":"install","queue":"live","policy":{"kind":"forward-all"}}
{"op":"install","queue":"steer","policy":{"kind":"direct-selection","capacity":16}}
{"op":"mark","label":"deployment-complete"}
`
	sched := NewScheduler()
	applied, err := ApplyPunctuationScript(strings.NewReader(script), sched)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 {
		t.Fatalf("applied = %d", applied)
	}
	queues := sched.Queues()
	if len(queues) != 2 || queues[0].Name != "live" || queues[1].Name != "steer" {
		t.Fatalf("queues: %+v", queues)
	}
	if sched.Marks() != 1 {
		t.Fatalf("marks = %d", sched.Marks())
	}
}

func TestApplyPunctuationScriptErrors(t *testing.T) {
	cases := []string{
		`{"op":"install","queue":"q"}`, // no policy
		`not json`,                     // parse error
		`{"op":"install","queue":"q","policy":{"kind":"warp"}}`, // unknown kind
		`{"op":"flush","queue":"ghost"}`,                        // unknown queue
	}
	for i, script := range cases {
		sched := NewScheduler()
		if _, err := ApplyPunctuationScript(strings.NewReader(script), sched); err == nil {
			t.Errorf("bad script %d accepted", i)
		}
	}
}

// TestGeneratedDeploymentDrivesScheduler closes the loop: a Skel-generated
// punctuation file (as produced by skel.StreamTemplates) configures a live
// scheduler that then forwards data. The script literal below is exactly
// what the generator emits for "live=forward-all, monitor=sample:2".
func TestGeneratedDeploymentDrivesScheduler(t *testing.T) {
	script := `{"op":"install","queue":"live","policy":{"kind":"forward-all"}}
{"op":"install","queue":"monitor","policy":{"kind":"sample","n":2}}
{"op":"mark","label":"deployment-complete"}`
	sched := NewScheduler()
	if _, err := ApplyPunctuationScript(strings.NewReader(script), sched); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	sched.Subscribe(func(q string, it Item) { counts[q]++ })
	for i := int64(1); i <= 10; i++ {
		sched.Ingest(intItem(t, i))
	}
	if counts["live"] != 10 || counts["monitor"] != 5 {
		t.Fatalf("deliveries: %v", counts)
	}
}

func TestReplayFeedsScheduler(t *testing.T) {
	// Capture a stream to bytes, then replay it through a fresh graph.
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, intSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 7; i++ {
		if err := enc.Encode(intItem(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	enc.Flush()

	sched := NewScheduler()
	var got []int64
	sched.Subscribe(func(q string, it Item) { got = append(got, it.Seq) })
	sched.Install("all", ForwardAll{})
	n, err := Replay(&buf, sched)
	if err != nil || n != 7 {
		t.Fatalf("replayed %d, %v", n, err)
	}
	if len(got) != 7 || got[0] != 1 || got[6] != 7 {
		t.Fatalf("delivered: %v", got)
	}
	// Truncated stream: replay reports the error and the partial count.
	var buf2 bytes.Buffer
	enc2, _ := NewEncoder(&buf2, intSchema())
	enc2.Encode(intItem(t, 1))
	enc2.Flush()
	data := buf2.Bytes()
	if _, err := Replay(bytes.NewReader(data[:len(data)-2]), NewScheduler()); err == nil {
		t.Fatal("truncated replay succeeded")
	}
}
