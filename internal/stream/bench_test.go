package stream

import (
	"bytes"
	"io"
	"testing"
	"time"
)

func BenchmarkFBSEncode(b *testing.B) {
	schema := sensorSchema()
	rec, _ := NewRecord(schema, int64(7), 3.14, "K", []byte{1, 2, 3, 4}, true)
	it := Item{Seq: 1, Time: time.Unix(1000, 0), Payload: rec}
	enc, _ := NewEncoder(io.Discard, schema)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(it); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFBSDecode(b *testing.B) {
	schema := sensorSchema()
	var buf bytes.Buffer
	enc, _ := NewEncoder(&buf, schema)
	rec, _ := NewRecord(schema, int64(7), 3.14, "K", []byte{1, 2, 3, 4}, true)
	const batch = 1000
	for i := 0; i < batch; i++ {
		enc.Encode(Item{Seq: int64(i), Time: time.Unix(1000, 0), Payload: rec})
	}
	enc.Flush()
	data := buf.Bytes()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i += batch {
		dec := NewDecoder(bytes.NewReader(data))
		for j := 0; j < batch; j++ {
			if _, err := dec.Decode(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSchedulerIngestTwoQueues(b *testing.B) {
	sched := NewScheduler()
	sched.Subscribe(func(string, Item) {})
	sched.Install("all", ForwardAll{})
	samp, _ := NewSampleEveryN(10)
	sched.Install("sampled", samp)
	schema := intSchema()
	rec, _ := NewRecord(schema, int64(1))
	it := Item{Seq: 1, Payload: rec}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it.Seq = int64(i)
		sched.Ingest(it)
	}
}
