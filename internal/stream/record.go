// Package stream implements the publish/subscribe data-streaming substrate
// of the paper's synthetic-workflow experiment (Section V-C): a
// self-describing binary marshalling format (FBS, in the lineage of
// FFS/EVPath the authors cite), a data-scheduler component with virtual data
// queues, runtime-installable selection policies driven by control-channel
// "data punctuation", and TCP/in-process transports connecting instrument
// sources to downstream consumers.
package stream

import (
	"fmt"
	"time"
)

// FieldType enumerates FBS field types.
type FieldType uint8

// Wire-stable field type codes.
const (
	TInt64 FieldType = iota + 1
	TFloat64
	TString
	TBytes
	TBool
)

func (t FieldType) String() string {
	switch t {
	case TInt64:
		return "int64"
	case TFloat64:
		return "float64"
	case TString:
		return "string"
	case TBytes:
		return "bytes"
	case TBool:
		return "bool"
	default:
		return fmt.Sprintf("FieldType(%d)", uint8(t))
	}
}

// Field is one named, typed element of a schema.
type Field struct {
	Name string
	Type FieldType
}

// Schema describes a record layout. Schemas travel with the stream (the
// "self-describing" property), so a consumer generated without a priori
// knowledge of the format can still unmarshal it.
type Schema struct {
	Name   string
	Fields []Field
}

// Validate checks structural invariants.
func (s Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("stream: schema needs a name")
	}
	if len(s.Fields) == 0 {
		return fmt.Errorf("stream: schema %q has no fields", s.Name)
	}
	seen := map[string]bool{}
	for _, f := range s.Fields {
		if f.Name == "" {
			return fmt.Errorf("stream: schema %q has unnamed field", s.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("stream: schema %q duplicates field %q", s.Name, f.Name)
		}
		seen[f.Name] = true
		switch f.Type {
		case TInt64, TFloat64, TString, TBytes, TBool:
		default:
			return fmt.Errorf("stream: field %q has invalid type %d", f.Name, f.Type)
		}
	}
	return nil
}

// FieldIndex returns the position of the named field, or -1.
func (s Schema) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Equal reports whether two schemas are structurally identical.
func (s Schema) Equal(o Schema) bool {
	if s.Name != o.Name || len(s.Fields) != len(o.Fields) {
		return false
	}
	for i := range s.Fields {
		if s.Fields[i] != o.Fields[i] {
			return false
		}
	}
	return true
}

// Record is one typed value tuple conforming to a schema. Values are held
// as any with concrete types int64 / float64 / string / []byte / bool.
type Record struct {
	Schema *Schema
	Values []any
}

// NewRecord builds and validates a record against a schema.
func NewRecord(s *Schema, values ...any) (Record, error) {
	r := Record{Schema: s, Values: values}
	if err := r.Validate(); err != nil {
		return Record{}, err
	}
	return r, nil
}

// Validate checks the value tuple against the schema.
func (r Record) Validate() error {
	if r.Schema == nil {
		return fmt.Errorf("stream: record without schema")
	}
	if len(r.Values) != len(r.Schema.Fields) {
		return fmt.Errorf("stream: record has %d values for %d fields", len(r.Values), len(r.Schema.Fields))
	}
	for i, f := range r.Schema.Fields {
		ok := false
		switch f.Type {
		case TInt64:
			_, ok = r.Values[i].(int64)
		case TFloat64:
			_, ok = r.Values[i].(float64)
		case TString:
			_, ok = r.Values[i].(string)
		case TBytes:
			_, ok = r.Values[i].([]byte)
		case TBool:
			_, ok = r.Values[i].(bool)
		}
		if !ok {
			return fmt.Errorf("stream: field %q wants %s, got %T", f.Name, f.Type, r.Values[i])
		}
	}
	return nil
}

// Get returns the value of the named field.
func (r Record) Get(name string) (any, error) {
	i := r.Schema.FieldIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("stream: no field %q in schema %q", name, r.Schema.Name)
	}
	return r.Values[i], nil
}

// Item is one element flowing through the workflow graph: a sequenced,
// timestamped record.
type Item struct {
	Seq     int64
	Time    time.Time
	Payload Record
}
