package stream

import (
	"net"
	"sync"
	"testing"
	"time"
)

func waitSubscribers(t *testing.T, srv *Server, queue string, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Subscribers(queue) < want {
		if time.Now().After(deadline) {
			t.Fatalf("only %d subscribers on %q", srv.Subscribers(queue), queue)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func startServer(t *testing.T) (*Server, string, *Scheduler) {
	t.Helper()
	sched := NewScheduler()
	srv, err := NewServer(sched, intSchema())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return srv, ln.Addr().String(), sched
}

func collectTCP(t *testing.T, addr, queue string, into *[]int64, mu *sync.Mutex, ready chan<- struct{}) {
	t.Helper()
	go func() {
		close(ready)
		SubscribeTCP(addr, queue, func(it Item) {
			mu.Lock()
			*into = append(*into, it.Seq)
			mu.Unlock()
		})
	}()
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func TestTCPEndToEndForwardAll(t *testing.T) {
	srv, addr, sched := startServer(t)
	sched.Install("all", ForwardAll{})

	var mu sync.Mutex
	var got []int64
	ready := make(chan struct{})
	collectTCP(t, addr, "all", &got, &mu, ready)
	<-ready
	waitSubscribers(t, srv, "all", 1)

	prod, err := DialProducer(addr, intSchema())
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	for i := int64(1); i <= 10; i++ {
		if err := prod.Send(intItem(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 10
	})
	mu.Lock()
	defer mu.Unlock()
	for i, seq := range got {
		if seq != int64(i+1) {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestControlChannelInstallsPolicyRemotely(t *testing.T) {
	srv, addr, _ := startServer(t)

	ctl, err := DialControl(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	// Remote steering: install a selection queue that did not exist at
	// deployment time.
	err = ctl.Send(WirePunctuation{
		Op: "install", Queue: "steered",
		Policy: &WirePolicy{Kind: "direct-selection", Capacity: 50},
	})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var got []int64
	ready := make(chan struct{})
	collectTCP(t, addr, "steered", &got, &mu, ready)
	<-ready
	waitSubscribers(t, srv, "steered", 1)

	prod, err := DialProducer(addr, intSchema())
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	for i := int64(1); i <= 5; i++ {
		if err := prod.Send(intItem(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing flows until selected.
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	if len(got) != 0 {
		mu.Unlock()
		t.Fatalf("selection leaked items: %v", got)
	}
	mu.Unlock()

	if err := ctl.Send(WirePunctuation{Op: "select", Queue: "steered", Seqs: []int64{3}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1 && got[0] == 3
	})
}

func TestControlChannelRejectsBadCommands(t *testing.T) {
	_, addr, _ := startServer(t)
	ctl, err := DialControl(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if err := ctl.Send(WirePunctuation{Op: "flush", Queue: "ghost"}); err == nil {
		t.Fatal("unknown queue accepted")
	}
	if err := ctl.Send(WirePunctuation{Op: "install", Queue: "q",
		Policy: &WirePolicy{Kind: "anti-gravity"}}); err == nil {
		t.Fatal("unknown policy kind accepted")
	}
	// The connection stays usable after an error.
	if err := ctl.Send(WirePunctuation{Op: "install", Queue: "q",
		Policy: &WirePolicy{Kind: "forward-all"}}); err != nil {
		t.Fatal(err)
	}
}

func TestWirePolicyBuildAllKinds(t *testing.T) {
	specs := []WirePolicy{
		{Kind: "forward-all"},
		{Kind: "window-count", Size: 4, Stride: 2},
		{Kind: "window-time", SpanMS: 100},
		{Kind: "direct-selection", Capacity: 8},
		{Kind: "sample", N: 3},
	}
	for _, spec := range specs {
		p, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", spec.Kind, err)
		}
		if p.Name() == "" {
			t.Fatalf("%s: empty name", spec.Kind)
		}
	}
	if _, err := (WirePolicy{Kind: "window-count"}).Build(); err == nil {
		t.Fatal("invalid window params accepted")
	}
}

func TestMultipleConsumersDifferentQueues(t *testing.T) {
	srv, addr, sched := startServer(t)
	sched.Install("all", ForwardAll{})
	samp, _ := NewSampleEveryN(2)
	sched.Install("sampled", samp)

	var mu sync.Mutex
	var allGot, sampledGot []int64
	r1, r2 := make(chan struct{}), make(chan struct{})
	collectTCP(t, addr, "all", &allGot, &mu, r1)
	collectTCP(t, addr, "sampled", &sampledGot, &mu, r2)
	<-r1
	<-r2
	waitSubscribers(t, srv, "", 2)

	prod, err := DialProducer(addr, intSchema())
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	for i := int64(1); i <= 6; i++ {
		prod.Send(intItem(t, i))
	}
	waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(allGot) == 6 && len(sampledGot) == 3
	})
}
