package stream

import (
	"context"
	"testing"

	"fairflow/internal/telemetry"
	"fairflow/internal/telemetry/eventlog"
)

// TestIngestContextTraceNesting pins the satellite guarantee: a consumer's
// span nests under the "stream.ingest" span, which nests under whatever span
// called IngestContext — one causal tree in the exported trace.
func TestIngestContextTraceNesting(t *testing.T) {
	s := NewScheduler()
	tr := telemetry.NewTracer()
	s.SetTracer(tr)
	if err := s.Install("all", ForwardAll{}); err != nil {
		t.Fatal(err)
	}
	s.SubscribeContext(func(ctx context.Context, queue string, it Item) {
		_, span := tr.Start(ctx, "consume", telemetry.String("queue", queue))
		span.End()
	})

	ctx, parent := tr.Start(nil, "collect")
	s.IngestContext(ctx, intItem(t, 1))
	parent.End()

	spans := tr.Snapshot()
	byName := map[string]telemetry.SpanData{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	collect, ok := byName["collect"]
	if !ok {
		t.Fatalf("no collect span in %v", spans)
	}
	ingest, ok := byName["stream.ingest"]
	if !ok {
		t.Fatalf("no stream.ingest span in %v", spans)
	}
	consume, ok := byName["consume"]
	if !ok {
		t.Fatalf("no consume span in %v", spans)
	}
	if ingest.Parent != collect.ID {
		t.Errorf("stream.ingest parent = %d, want collect id %d", ingest.Parent, collect.ID)
	}
	if consume.Parent != ingest.ID {
		t.Errorf("consume parent = %d, want stream.ingest id %d", consume.Parent, ingest.ID)
	}
	if got := ingest.Attr("queue"); got != "all" {
		t.Errorf("ingest queue attr = %q, want all", got)
	}
}

// TestIngestWithoutTracerDeliversPlain checks plain Ingest and a nil tracer
// still deliver to context consumers (with a background context).
func TestIngestWithoutTracerDeliversPlain(t *testing.T) {
	s := NewScheduler()
	if err := s.Install("all", ForwardAll{}); err != nil {
		t.Fatal(err)
	}
	var got int
	s.SubscribeContext(func(ctx context.Context, queue string, it Item) {
		if ctx == nil {
			t.Error("nil context delivered")
		}
		got++
	})
	s.Ingest(intItem(t, 1))
	s.Ingest(intItem(t, 2))
	if got != 2 {
		t.Errorf("context consumer saw %d items, want 2", got)
	}
}

// TestSchedulerPunctuationEvents checks the control channel is journaled as
// queue.<op> events and absorbed items appear at debug level.
func TestSchedulerPunctuationEvents(t *testing.T) {
	s := NewScheduler()
	l := eventlog.NewLog()
	l.SetMinLevel(eventlog.Debug)
	s.SetEvents(l)

	sample, err := NewSampleEveryN(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Install("sampled", sample); err != nil {
		t.Fatal(err)
	}
	s.Ingest(intItem(t, 1)) // absorbed (every 2nd forwarded)
	s.Ingest(intItem(t, 2)) // forwarded
	if err := s.Punctuate(Punctuation{Op: OpMark, Label: "boundary"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Punctuate(Punctuation{Op: OpDeactivate, Queue: "sampled"}); err != nil {
		t.Fatal(err)
	}

	var types []string
	for _, ev := range l.Snapshot() {
		types = append(types, ev.Type)
	}
	want := []string{"queue.install", "queue.absorbed", "queue.mark", "queue.deactivate"}
	if len(types) != len(want) {
		t.Fatalf("event types = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event types = %v, want %v", types, want)
		}
	}

	evs := l.Snapshot()
	if evs[0].Attr("policy") != sample.Name() {
		t.Errorf("install event policy = %q, want %q", evs[0].Attr("policy"), sample.Name())
	}
	if evs[1].Attr("queue") != "sampled" || evs[1].Level != eventlog.Debug {
		t.Errorf("absorbed event = %+v, want debug with queue=sampled", evs[1])
	}
	if evs[2].Msg != "boundary" {
		t.Errorf("mark event msg = %q, want boundary", evs[2].Msg)
	}

	// With min level Info the absorbed debug event is suppressed entirely.
	l2 := eventlog.NewLog()
	s2 := NewScheduler()
	s2.SetEvents(l2)
	if err := s2.Install("sampled", mustSample(t, 2)); err != nil {
		t.Fatal(err)
	}
	s2.Ingest(intItem(t, 1))
	for _, ev := range l2.Snapshot() {
		if ev.Type == eventlog.QueueAbsorbed {
			t.Error("absorbed event journaled despite Info min level")
		}
	}
}

func mustSample(t *testing.T, n int) Policy {
	t.Helper()
	p, err := NewSampleEveryN(n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
