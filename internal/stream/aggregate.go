package stream

import "fmt"

// AggregatingWindow is a tumbling window that emits one synthetic summary
// record per window instead of forwarding raw items: for each numeric field
// of the input schema it reports the mean, plus a count. This is the "data
// fusion"/summarisation tier of the data-semantics gauge applied inside the
// data scheduler — downstream monitoring consumers receive one record per
// window, not the firehose.
type AggregatingWindow struct {
	// Size is the window length in items.
	Size int

	in  *Schema
	out *Schema
	// idx maps output field position → input field position (−1 for count).
	idx   []int
	buf   []Item
	emits int64
}

// NewAggregatingWindow builds an aggregator over the input schema. The
// output schema is named "<input>.agg" with a leading int64 "count" field
// and one float64 "<field>_mean" per numeric (int64/float64) input field.
func NewAggregatingWindow(in *Schema, size int) (*AggregatingWindow, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if size < 1 {
		return nil, fmt.Errorf("stream: aggregation window must be ≥1")
	}
	out := &Schema{Name: in.Name + ".agg", Fields: []Field{{Name: "count", Type: TInt64}}}
	idx := []int{-1}
	for i, f := range in.Fields {
		if f.Type == TInt64 || f.Type == TFloat64 {
			out.Fields = append(out.Fields, Field{Name: f.Name + "_mean", Type: TFloat64})
			idx = append(idx, i)
		}
	}
	if len(out.Fields) == 1 {
		return nil, fmt.Errorf("stream: schema %q has no numeric fields to aggregate", in.Name)
	}
	return &AggregatingWindow{Size: size, in: in, out: out, idx: idx}, nil
}

// OutputSchema is the synthetic summary schema.
func (p *AggregatingWindow) OutputSchema() *Schema { return p.out }

// Admit implements Policy: buffers until the window fills, then emits one
// summary item (sequence = number of windows emitted, timestamp = last
// member's).
func (p *AggregatingWindow) Admit(it Item) []Item {
	if it.Payload.Schema == nil || !it.Payload.Schema.Equal(*p.in) {
		return nil // foreign records are not aggregable; drop
	}
	p.buf = append(p.buf, it)
	if len(p.buf) < p.Size {
		return nil
	}
	summary := p.summarise(p.buf)
	p.buf = p.buf[:0]
	return []Item{summary}
}

func (p *AggregatingWindow) summarise(window []Item) Item {
	values := make([]any, len(p.out.Fields))
	values[0] = int64(len(window))
	for o := 1; o < len(p.out.Fields); o++ {
		src := p.idx[o]
		var sum float64
		for _, it := range window {
			switch v := it.Payload.Values[src].(type) {
			case int64:
				sum += float64(v)
			case float64:
				sum += v
			}
		}
		values[o] = sum / float64(len(window))
	}
	p.emits++
	return Item{
		Seq:     p.emits,
		Time:    window[len(window)-1].Time,
		Payload: Record{Schema: p.out, Values: values},
	}
}

// Control implements Policy.
func (p *AggregatingWindow) Control(Punctuation) []Item { return nil }

// Flush implements Policy: a partial window is summarised rather than
// dropped.
func (p *AggregatingWindow) Flush() []Item {
	if len(p.buf) == 0 {
		return nil
	}
	summary := p.summarise(p.buf)
	p.buf = p.buf[:0]
	return []Item{summary}
}

// Name implements Policy.
func (p *AggregatingWindow) Name() string {
	return fmt.Sprintf("aggregate-window(%d)", p.Size)
}

// ensure interface conformance at compile time.
var _ Policy = (*AggregatingWindow)(nil)
