package stream

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// TestDecoderTornFramesEveryOffset truncates a valid stream at every byte
// offset and pins the decoder's torn-frame contract deterministically (the
// fuzz test samples; this enumerates): items before the tear decode
// intact, the tear itself surfaces as io.ErrUnexpectedEOF except at clean
// item boundaries (io.EOF), and the decoder never fabricates a record.
func TestDecoderTornFramesEveryOffset(t *testing.T) {
	var pristine bytes.Buffer
	enc, err := NewEncoder(&pristine, sensorSchema())
	if err != nil {
		t.Fatal(err)
	}
	const items = 3
	for i := int64(0); i < items; i++ {
		rec, err := NewRecord(sensorSchema(), i, float64(i)*1.5, "sensor", []byte{byte(i), 0xFF}, i%2 == 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(Item{Seq: i, Time: time.Unix(i, 0), Payload: rec}); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	full := pristine.Bytes()

	// First find the clean boundaries: the offsets after the header and
	// after each complete item, where truncation looks like a shorter but
	// valid stream.
	clean := map[int]int{} // offset → items decodable there
	for cut := 0; cut <= len(full); cut++ {
		dec := NewDecoder(bytes.NewReader(full[:cut]))
		n := 0
		var finalErr error
		for {
			it, err := dec.Decode()
			if err != nil {
				finalErr = err
				break
			}
			// Anything decoded must be an intact prefix item.
			if it.Seq != int64(n) || it.Payload.Values[0].(int64) != int64(n) {
				t.Fatalf("cut=%d: item %d decoded as seq=%d values=%v", cut, n, it.Seq, it.Payload.Values)
			}
			if n++; n > items {
				t.Fatalf("cut=%d: decoder fabricated item %d of %d", cut, n, items)
			}
		}
		switch finalErr {
		case io.EOF:
			clean[cut] = n
		case io.ErrUnexpectedEOF:
			// The torn-frame signal: a frame started and the bytes ran out.
		default:
			t.Fatalf("cut=%d after %d items: got %v, want io.EOF or io.ErrUnexpectedEOF", cut, n, finalErr)
		}
	}
	// Exactly items+2 clean offsets exist: the empty stream, after the
	// header, and after each item (the full length included); every other
	// truncation is a torn frame.
	if len(clean) != items+2 {
		t.Fatalf("clean boundaries = %v, want %d of them", clean, items+2)
	}
	if n, ok := clean[len(full)]; !ok || n != items {
		t.Fatalf("full stream decodes %d items (clean=%v)", n, clean)
	}
}

// TestServerHandshakeDeadline pins the transport hardening: a connection
// that never completes its role handshake is closed by the server instead
// of pinning a handler goroutine forever.
func TestServerHandshakeDeadline(t *testing.T) {
	sched := NewScheduler()
	srv, err := NewServer(sched, sensorSchema())
	if err != nil {
		t.Fatal(err)
	}
	srv.Timeout = 100 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing. The server must give up and close the connection.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept a silent connection open")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("server took %v to drop the silent connection", elapsed)
	}
}
