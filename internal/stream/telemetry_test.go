package stream

import (
	"testing"

	"fairflow/internal/telemetry"
)

// TestSchedulerTelemetry checks the per-queue counters: a queue installed
// before SetMetrics is wired retroactively, one installed after is wired at
// install time, and admitted/forwarded/absorbed reflect each policy's
// behaviour.
func TestSchedulerTelemetry(t *testing.T) {
	s := NewScheduler()
	if err := s.Install("all", ForwardAll{}); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	s.SetMetrics(reg)
	sample, err := NewSampleEveryN(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Install("sampled", sample); err != nil {
		t.Fatal(err)
	}

	for i := int64(1); i <= 4; i++ {
		s.Ingest(intItem(t, i))
	}
	if err := s.Punctuate(Punctuation{Op: OpMark, Label: "boundary"}); err != nil {
		t.Fatal(err)
	}

	check := func(name, queue, policy string, want int64) {
		t.Helper()
		got := reg.Counter(name, "queue", queue, "policy", policy).Value()
		if got != want {
			t.Errorf("%s{queue=%s} = %d, want %d", name, queue, got, want)
		}
	}
	check("stream.items_admitted_total", "all", "forward-all", 4)
	check("stream.items_forwarded_total", "all", "forward-all", 4)
	check("stream.items_absorbed_total", "all", "forward-all", 0)
	check("stream.items_admitted_total", "sampled", "sample-every(2)", 4)
	check("stream.items_forwarded_total", "sampled", "sample-every(2)", 2)
	check("stream.items_absorbed_total", "sampled", "sample-every(2)", 2)
	if got := reg.Counter("stream.marks_total").Value(); got != 1 {
		t.Errorf("stream.marks_total = %d, want 1", got)
	}
}

// TestSchedulerTelemetryFlushCountsForwarded checks that items a buffering
// policy absorbed at admission count as forwarded once a flush releases
// them downstream.
func TestSchedulerTelemetryFlushCountsForwarded(t *testing.T) {
	s := NewScheduler()
	reg := telemetry.NewRegistry()
	s.SetMetrics(reg)
	ds, err := NewDirectSelection(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Install("held", ds); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		s.Ingest(intItem(t, i))
	}
	fwd := func() int64 {
		return reg.Counter("stream.items_forwarded_total", "queue", "held", "policy", ds.Name()).Value()
	}
	if got := fwd(); got != 0 {
		t.Fatalf("forwarded before flush = %d, want 0", got)
	}
	if err := s.Punctuate(Punctuation{Op: OpFlush, Queue: "held"}); err != nil {
		t.Fatal(err)
	}
	if got := fwd(); got != 3 {
		t.Errorf("forwarded after flush = %d, want 3", got)
	}
}
