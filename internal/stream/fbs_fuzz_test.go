package stream

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"
)

// TestFBSDecodeNeverPanicsOnCorruption mutates valid streams and asserts
// the decoder returns errors instead of panicking or looping: robustness
// against the truncated/bit-rotted files long-lived workflows encounter.
func TestFBSDecodeNeverPanicsOnCorruption(t *testing.T) {
	var pristine bytes.Buffer
	enc, _ := NewEncoder(&pristine, sensorSchema())
	for i := int64(0); i < 5; i++ {
		rec, _ := NewRecord(sensorSchema(), i, float64(i), "u", []byte{1, 2}, true)
		enc.Encode(Item{Seq: i, Time: time.Unix(i, 0), Payload: rec})
	}
	enc.Flush()
	base := pristine.Bytes()

	f := func(pos uint16, val byte, truncate uint16) bool {
		data := append([]byte(nil), base...)
		if len(data) == 0 {
			return true
		}
		data[int(pos)%len(data)] = val
		if cut := int(truncate) % (len(data) + 1); cut < len(data) {
			data = data[:cut]
		}
		dec := NewDecoder(bytes.NewReader(data))
		// Decode until any error; cap iterations to catch infinite loops.
		for i := 0; i < 100; i++ {
			_, err := dec.Decode()
			if err != nil {
				return true // any error is acceptable; panics are not
			}
		}
		// A mutated stream yielding >100 records means runaway parsing of
		// the 5-record input.
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestFBSDecodeEmptyAndGarbage covers degenerate inputs.
func TestFBSDecodeEmptyAndGarbage(t *testing.T) {
	for _, in := range [][]byte{
		nil,
		{0x00},
		[]byte("FBS1"),     // magic only
		[]byte("FBS1\x02"), // wrong version
		bytes.Repeat([]byte{0xFF}, 64),
	} {
		dec := NewDecoder(bytes.NewReader(in))
		if _, err := dec.Decode(); err == nil {
			t.Fatalf("garbage %v decoded", in)
		}
	}
	// Clean empty stream (header only) yields EOF.
	var buf bytes.Buffer
	enc, _ := NewEncoder(&buf, sensorSchema())
	rec, _ := NewRecord(sensorSchema(), int64(1), 1.0, "x", []byte{}, false)
	enc.Encode(Item{Payload: rec})
	enc.Flush()
	dec := NewDecoder(&buf)
	if _, err := dec.Decode(); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}
