package experiments

import (
	"fmt"

	"fairflow/internal/ckpt"
	"fairflow/internal/expt"
)

// CheckpointSweepConfig sizes the Fig. 3 reproduction. The zero value of
// Scale runs the paper-scale experiment (50 steps × 1 TB on 128 nodes).
type CheckpointSweepConfig struct {
	// Seed drives all randomness.
	Seed int64
	// RunsPerBudget averages filesystem noise per budget point.
	RunsPerBudget int
}

// RunCheckpointSweep reproduces Fig. 3: number of checkpoints written as a
// function of the permitted I/O overhead percentage.
func RunCheckpointSweep(cfg CheckpointSweepConfig) ([]ckpt.SweepPoint, error) {
	scfg := ckpt.DefaultSweepConfig(cfg.Seed)
	if cfg.RunsPerBudget > 0 {
		scfg.RunsPerBudget = cfg.RunsPerBudget
	}
	return ckpt.OverheadSweep(scfg)
}

// CheckpointSweepFigure renders Fig. 3.
func CheckpointSweepFigure(points []ckpt.SweepPoint) *expt.Figure {
	f := expt.NewFigure("Fig. 3", "Checkpoints written vs permitted I/O overhead (50 steps × 1 TB, 128 nodes)",
		"permitted I/O overhead (%)", "checkpoints written")
	s := f.AddSeries("overhead-budget policy (mean)")
	realised := f.AddSeries("realised overhead (%)")
	for _, p := range points {
		s.Add(p.Budget*100, p.MeanCheckpoints)
		realised.Add(p.Budget*100, p.MeanOverhead*100)
	}
	return f
}

// RunCheckpointVariation reproduces Fig. 4: the run-to-run spread of
// checkpoint counts at a fixed 10% budget.
func RunCheckpointVariation(seed int64, runs int) ([]ckpt.RunStats, error) {
	scfg := ckpt.DefaultSweepConfig(seed)
	return ckpt.RunVariation(scfg, 0.10, runs)
}

// CheckpointVariationFigure renders Fig. 4.
func CheckpointVariationFigure(runs []ckpt.RunStats) *expt.Figure {
	f := expt.NewFigure("Fig. 4", "Run-to-run variation in checkpoints written at 10% max I/O overhead",
		"run index", "checkpoints written")
	s := f.AddSeries("overhead-budget(10%)")
	for i, r := range runs {
		s.Add(float64(i+1), float64(r.CheckpointsWritten))
	}
	return f
}

// CheckpointVariationSummary tabulates the Fig. 4 spread plus the
// fixed-interval ablation.
func CheckpointVariationSummary(runs []ckpt.RunStats, cmp *ckpt.PolicyComparison) *expt.Table {
	counts := make([]float64, len(runs))
	overheads := make([]float64, len(runs))
	for i, r := range runs {
		counts[i] = float64(r.CheckpointsWritten)
		overheads[i] = r.OverheadFraction() * 100
	}
	cs, os := expt.Summarize(counts), expt.Summarize(overheads)
	t := expt.NewTable("Fig. 4 summary + policy ablation",
		"quantity", "min", "median", "max", "mean")
	t.AddRow("checkpoints @10% budget", cs.Min, cs.Median, cs.Max, cs.Mean)
	t.AddRow("realised overhead %", os.Min, os.Median, os.Max, os.Mean)
	if cmp != nil {
		t.AddRow(fmt.Sprintf("ablation: %s wrote", cmp.Fixed.Policy),
			cmp.Fixed.CheckpointsWritten, "", "",
			fmt.Sprintf("overhead %.1f%%", cmp.Fixed.OverheadFraction()*100))
		t.AddRow(fmt.Sprintf("ablation: %s wrote", cmp.Budget.Policy),
			cmp.Budget.CheckpointsWritten, "", "",
			fmt.Sprintf("overhead %.1f%%", cmp.Budget.OverheadFraction()*100))
	}
	return t
}
