package experiments

import (
	"fmt"
	"time"

	"fairflow/internal/expt"
	"fairflow/internal/stream"
)

// StreamingConfig sizes the Section V-C experiment.
type StreamingConfig struct {
	// Items is how many records flow through the graph.
	Items int
	// SwapAt installs the steering policy after this many items.
	SwapAt int
}

// DefaultStreamingConfig matches a short instrument burst.
func DefaultStreamingConfig() StreamingConfig {
	return StreamingConfig{Items: 50_000, SwapAt: 25_000}
}

// PolicyThroughput measures one policy's forwarding behaviour.
type PolicyThroughput struct {
	Policy string
	// ItemsPerSecond is ingest throughput with the policy installed.
	ItemsPerSecond float64
	// Selectivity is forwarded/admitted.
	Selectivity float64
}

// StreamingResult is the Fig. 5 data: per-policy throughput, plus the
// runtime-swap demonstration (a policy installed mid-stream via control
// punctuation, without touching the generated communication components).
type StreamingResult struct {
	Policies []PolicyThroughput
	// SwapLatency is the wall time of the punctuation that installed the
	// steering policy mid-stream.
	SwapLatency time.Duration
	// SelectedSeq is the item pulled out via direct selection after the
	// swap (demonstrating the steered path works).
	SelectedSeq int64
	// PostSwapQueues is the number of simultaneously installed queues at
	// the end — the "simultaneous installation of multiple data scheduling
	// policies" property.
	PostSwapQueues int
}

func instrumentSchema() *stream.Schema {
	return &stream.Schema{
		Name: "instrument",
		Fields: []stream.Field{
			{Name: "sensor", Type: stream.TInt64},
			{Name: "value", Type: stream.TFloat64},
		},
	}
}

func makeItem(schema *stream.Schema, seq int64) stream.Item {
	rec := stream.Record{Schema: schema, Values: []any{seq % 16, float64(seq) * 0.25}}
	return stream.Item{Seq: seq, Time: time.Unix(seq/1000, seq%1000*1e6), Payload: rec}
}

// newPolicy constructs each measured policy fresh.
func newPolicy(kind string) (stream.Policy, error) {
	switch kind {
	case "forward-all":
		return stream.ForwardAll{}, nil
	case "window-count":
		return stream.NewSlidingWindowCount(64, 64)
	case "sample":
		return stream.NewSampleEveryN(10)
	case "direct-selection":
		return stream.NewDirectSelection(4096)
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q", kind)
	}
}

// RunStreaming executes the Section V-C experiment: measure each policy's
// standalone throughput/selectivity, then demonstrate the runtime policy
// swap on a live graph.
func RunStreaming(cfg StreamingConfig) (*StreamingResult, error) {
	if cfg.Items < 10 || cfg.SwapAt < 1 || cfg.SwapAt >= cfg.Items {
		return nil, fmt.Errorf("experiments: bad streaming config %+v", cfg)
	}
	schema := instrumentSchema()
	res := &StreamingResult{}

	for _, kind := range []string{"forward-all", "window-count", "sample", "direct-selection"} {
		pol, err := newPolicy(kind)
		if err != nil {
			return nil, err
		}
		sched := stream.NewScheduler()
		var forwarded int64
		sched.Subscribe(func(string, stream.Item) { forwarded++ })
		if err := sched.Install("q", pol); err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < cfg.Items; i++ {
			sched.Ingest(makeItem(schema, int64(i)))
		}
		elapsed := time.Since(start).Seconds()
		res.Policies = append(res.Policies, PolicyThroughput{
			Policy:         pol.Name(),
			ItemsPerSecond: float64(cfg.Items) / elapsed,
			Selectivity:    float64(forwarded) / float64(cfg.Items),
		})
	}

	// Runtime swap: start with forward-all; mid-stream, a steering process
	// installs a direct-selection queue and pulls one specific item.
	sched := stream.NewScheduler()
	var steered []int64
	sched.Subscribe(func(q string, it stream.Item) {
		if q == "steered" {
			steered = append(steered, it.Seq)
		}
	})
	if err := sched.Install("live", stream.ForwardAll{}); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.SwapAt; i++ {
		sched.Ingest(makeItem(schema, int64(i)))
	}
	sel, err := stream.NewDirectSelection(cfg.Items)
	if err != nil {
		return nil, err
	}
	swapStart := time.Now()
	if err := sched.Punctuate(stream.Punctuation{Op: stream.OpInstall, Queue: "steered", Policy: sel}); err != nil {
		return nil, err
	}
	res.SwapLatency = time.Since(swapStart)
	for i := cfg.SwapAt; i < cfg.Items; i++ {
		sched.Ingest(makeItem(schema, int64(i)))
	}
	want := int64(cfg.SwapAt + (cfg.Items-cfg.SwapAt)/2)
	if err := sched.Punctuate(stream.Punctuation{Op: stream.OpSelect, Queue: "steered", Seqs: []int64{want}}); err != nil {
		return nil, err
	}
	if len(steered) != 1 || steered[0] != want {
		return nil, fmt.Errorf("experiments: steering selected %v, want [%d]", steered, want)
	}
	res.SelectedSeq = steered[0]
	res.PostSwapQueues = len(sched.Queues())
	return res, nil
}

// StreamingTable renders the Fig. 5 data.
func StreamingTable(r *StreamingResult) *expt.Table {
	t := expt.NewTable("Fig. 5 — data-scheduler policies on the generated communication subgraph",
		"policy", "ingest throughput (items/s)", "selectivity")
	for _, p := range r.Policies {
		t.AddRow(p.Policy, fmt.Sprintf("%.0f", p.ItemsPerSecond), fmt.Sprintf("%.4f", p.Selectivity))
	}
	t.AddRow("runtime policy swap", fmt.Sprintf("installed in %s", r.SwapLatency),
		fmt.Sprintf("steered item %d via punctuation; %d queues live", r.SelectedSeq, r.PostSwapQueues))
	return t
}
