package experiments

import (
	"fmt"
	"strconv"

	"fairflow/internal/census"
	"fairflow/internal/cheetah"
	"fairflow/internal/expt"
	"fairflow/internal/iorf"
	"fairflow/internal/savanna"
)

// IRFLoopConfig sizes the Section V-D experiment.
type IRFLoopConfig struct {
	// Features is the campaign size (paper: 1606 — one iRF fit per feature).
	Features int
	// Nodes and WalltimeSeconds shape each allocation (paper: 20 nodes,
	// 2 hours).
	Nodes           int
	WalltimeSeconds float64
	// MedianRunSeconds and Sigma shape the heavy-tailed per-feature fit
	// time distribution.
	MedianRunSeconds float64
	Sigma            float64
	// Allocations bounds the to-completion resubmission loop.
	Allocations int
	// Seed drives everything.
	Seed int64
}

// DefaultIRFLoopConfig reproduces the paper's shape: a 1606-feature ACS
// campaign on 2-hour, 20-node Summit allocations.
func DefaultIRFLoopConfig() IRFLoopConfig {
	return IRFLoopConfig{
		Features:         1606,
		Nodes:            20,
		WalltimeSeconds:  7200,
		MedianRunSeconds: 120,
		Sigma:            1.45,
		Allocations:      200,
		Seed:             2019,
	}
}

// BuildIRFCampaign composes the Cheetah campaign: one sweep over all
// feature indices, exactly as the paper's "parameter sweep over all the
// 1606 features".
func BuildIRFCampaign(features, nodes int, walltimeMinutes int) (*cheetah.Manifest, error) {
	values := make([]string, features)
	for i := range values {
		values[i] = strconv.Itoa(i)
	}
	c := cheetah.Campaign{
		Name:    "irf-loop-acs2019",
		App:     "irf-loop-fit",
		Account: "SYB105",
		Groups: []cheetah.SweepGroup{{
			Name: "features", Nodes: nodes, WalltimeMinutes: walltimeMinutes,
			Sweeps: []cheetah.Sweep{{
				Name: "all-features",
				Parameters: []cheetah.Parameter{{
					Name: "feature", Layer: cheetah.Application, Values: values,
				}},
			}},
		}},
	}
	return cheetah.BuildManifest(c)
}

// IRFLoopResult is the Figs. 6 and 7 data.
type IRFLoopResult struct {
	// Dynamic and SetSync are the to-completion outcomes per discipline.
	Dynamic, SetSync *savanna.CampaignOutcome
	// DynPerAlloc and SetPerAlloc are the Fig. 7 values: mean parameters
	// explored per allocation.
	DynPerAlloc, SetPerAlloc float64
	// Speedup is the Fig. 7 improvement factor (paper: >5×).
	Speedup float64
}

// RunIRFLoopScheduling reproduces Figs. 6 and 7: the same campaign, the
// same per-run durations, executed to completion under the dynamic pilot
// and the set-synchronized baseline.
func RunIRFLoopScheduling(cfg IRFLoopConfig) (*IRFLoopResult, error) {
	m, err := BuildIRFCampaign(cfg.Features, cfg.Nodes, int(cfg.WalltimeSeconds/60))
	if err != nil {
		return nil, err
	}
	eng := &savanna.SimEngine{
		// Cap the tail at 90% of the walltime: a run longer than the
		// allocation could never finish under either scheduler.
		Durations: savanna.TruncatedLogNormalDurations(cfg.MedianRunSeconds, cfg.Sigma, 0.9*cfg.WalltimeSeconds),
		Seed:      cfg.Seed,
	}
	dyn, err := eng.RunToCompletion(m.Runs, cfg.Nodes, cfg.WalltimeSeconds, savanna.Dynamic, cfg.Seed+1, cfg.Allocations)
	if err != nil {
		return nil, fmt.Errorf("experiments: dynamic: %w", err)
	}
	set, err := eng.RunToCompletion(m.Runs, cfg.Nodes, cfg.WalltimeSeconds, savanna.SetSynchronized, cfg.Seed+1, cfg.Allocations)
	if err != nil {
		return nil, fmt.Errorf("experiments: set-synchronized: %w", err)
	}
	res := &IRFLoopResult{Dynamic: dyn, SetSync: set}
	res.DynPerAlloc = meanInts(dyn.PerAllocationCompleted)
	res.SetPerAlloc = meanInts(set.PerAllocationCompleted)
	if res.SetPerAlloc > 0 {
		res.Speedup = res.DynPerAlloc / res.SetPerAlloc
	}
	return res, nil
}

func meanInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += float64(x)
	}
	return s / float64(len(xs))
}

// IRFUtilizationFigure renders Fig. 6: busy nodes over the first allocation
// under both disciplines.
func IRFUtilizationFigure(r *IRFLoopResult) *expt.Figure {
	f := expt.NewFigure("Fig. 6", "Node utilisation over the first allocation: set-synchronized vs dynamic",
		"time (hours)", "busy nodes")
	dyn := f.AddSeries("cheetah/savanna dynamic")
	for _, p := range r.Dynamic.FirstTimeline {
		dyn.Add(p.Time/3600, p.BusyNodes)
	}
	set := f.AddSeries("original set-synchronized")
	for _, p := range r.SetSync.FirstTimeline {
		set.Add(p.Time/3600, p.BusyNodes)
	}
	return f
}

// IRFThroughputTable renders Fig. 7.
func IRFThroughputTable(r *IRFLoopResult) *expt.Table {
	t := expt.NewTable("Fig. 7 — parameters explored per 2-hour 20-node allocation",
		"workflow", "mean parameters/allocation", "allocations to finish campaign", "mean node utilisation")
	t.AddRow("original (set-synchronized)", fmt.Sprintf("%.1f", r.SetPerAlloc),
		r.SetSync.Allocations, fmt.Sprintf("%.1f%%", r.SetSync.MeanUtilization*100))
	t.AddRow("cheetah/savanna (dynamic)", fmt.Sprintf("%.1f", r.DynPerAlloc),
		r.Dynamic.Allocations, fmt.Sprintf("%.1f%%", r.Dynamic.MeanUtilization*100))
	t.AddRow("improvement", fmt.Sprintf("%.1f×", r.Speedup), "", "")
	return t
}

// RunRealIRFLoop validates the scientific substance behind the campaign: a
// real (scaled-down) iRF-LOOP over the synthetic census data, checking the
// network recovers the generator's block structure.
func RunRealIRFLoop(features, samples int, seed int64) (*iorf.Network, *census.Dataset, error) {
	data, err := census.Generate(census.Config{
		Features: features, Samples: samples, LatentFactors: 3, Noise: 0.3, Seed: seed,
	})
	if err != nil {
		return nil, nil, err
	}
	net, err := iorf.RunLOOP(data.X, data.FeatureNames, iorf.LoopConfig{
		IRF: iorf.IRFConfig{
			Forest: iorf.ForestConfig{
				Trees: 24,
				Tree:  iorf.TreeConfig{MaxDepth: 6, MinLeaf: 3, MTry: 0},
				Seed:  seed + 1,
			},
			Iterations:  2,
			WeightFloor: 0.05,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	return net, data, nil
}

// WithinBlockEdgeFraction computes, over the top-k edges of the network,
// the fraction connecting features of the same generator block — the
// quality check that the all-to-all network is signal, not noise.
func WithinBlockEdgeFraction(net *iorf.Network, data *census.Dataset, k int) float64 {
	blockOf := map[string]int{}
	for i, name := range data.FeatureNames {
		blockOf[name] = data.Block[i]
	}
	edges := net.TopEdges(k)
	if len(edges) == 0 {
		return 0
	}
	within := 0
	for _, e := range edges {
		if blockOf[e.From] == blockOf[e.To] {
			within++
		}
	}
	return float64(within) / float64(len(edges))
}
