package experiments

import (
	"strings"
	"testing"
)

func TestGWASPasteEndToEnd(t *testing.T) {
	cfg := GWASPasteConfig{Samples: 24, SNPs: 200, FanIn: 8, Parallelism: 4, Seed: 1}
	res, err := RunGWASPaste(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 200 || res.Columns != 24 {
		t.Fatalf("matrix shape %d×%d", res.Rows, res.Columns)
	}
	if res.Interventions.Manual <= res.Interventions.ModelDriven {
		t.Fatal("manual workflow should cost more interventions")
	}
	if res.GeneratedArtifacts != 4 || res.ManifestDigest == "" {
		t.Fatalf("generation: %d artifacts, digest %q", res.GeneratedArtifacts, res.ManifestDigest)
	}
	table := GWASPasteTable(res)
	md := table.Markdown()
	if !strings.Contains(md, "traditional manual script") || !strings.Contains(md, "campaign") {
		t.Fatalf("table markdown:\n%s", md)
	}
}

func TestGWASPasteRejectsBadConfig(t *testing.T) {
	if _, err := RunGWASPaste(GWASPasteConfig{Samples: 4, SNPs: 1, FanIn: 1}); err == nil {
		t.Fatal("fan-in 1 accepted")
	}
}

func TestCheckpointSweepShape(t *testing.T) {
	pts, err := RunCheckpointSweep(CheckpointSweepConfig{Seed: 3, RunsPerBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("points = %d", len(pts))
	}
	// Paper Fig. 3 shape: monotone non-decreasing, saturating ≤ 50.
	for i := 1; i < len(pts); i++ {
		if pts[i].MeanCheckpoints < pts[i-1].MeanCheckpoints-1e-9 {
			t.Fatalf("non-monotone at %d: %v", i, pts)
		}
	}
	if pts[len(pts)-1].MeanCheckpoints > 50 {
		t.Fatal("more checkpoints than steps")
	}
	if pts[0].MeanCheckpoints >= pts[len(pts)-1].MeanCheckpoints {
		t.Fatal("sweep is flat — budget had no effect")
	}
	fig := CheckpointSweepFigure(pts)
	if !strings.Contains(fig.Markdown(), "Fig. 3") {
		t.Fatal("figure markdown missing id")
	}
}

func TestCheckpointVariationSpread(t *testing.T) {
	runs, err := RunCheckpointVariation(5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 6 {
		t.Fatalf("runs = %d", len(runs))
	}
	min, max := runs[0].CheckpointsWritten, runs[0].CheckpointsWritten
	for _, r := range runs {
		if r.CheckpointsWritten < min {
			min = r.CheckpointsWritten
		}
		if r.CheckpointsWritten > max {
			max = r.CheckpointsWritten
		}
	}
	if min == max {
		t.Fatal("no run-to-run variation (Fig. 4 would be flat)")
	}
	fig := CheckpointVariationFigure(runs)
	if len(fig.Series[0].X) != 6 {
		t.Fatal("figure lost runs")
	}
	tbl := CheckpointVariationSummary(runs, nil)
	if !strings.Contains(tbl.Markdown(), "checkpoints @10% budget") {
		t.Fatal("summary table malformed")
	}
}

func TestStreamingExperiment(t *testing.T) {
	res, err := RunStreaming(StreamingConfig{Items: 5000, SwapAt: 2500})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 4 {
		t.Fatalf("policies = %d", len(res.Policies))
	}
	byName := map[string]PolicyThroughput{}
	for _, p := range res.Policies {
		if p.ItemsPerSecond <= 0 {
			t.Fatalf("%s throughput %v", p.Policy, p.ItemsPerSecond)
		}
		byName[p.Policy] = p
	}
	if byName["forward-all"].Selectivity != 1 {
		t.Fatalf("forward-all selectivity %v", byName["forward-all"].Selectivity)
	}
	if s := byName["sample-every(10)"].Selectivity; s < 0.09 || s > 0.11 {
		t.Fatalf("sample selectivity %v", s)
	}
	if byName["direct-selection(cap=4096)"].Selectivity != 0 {
		t.Fatal("selection forwarded without punctuation")
	}
	if res.PostSwapQueues != 2 {
		t.Fatalf("queues after swap = %d", res.PostSwapQueues)
	}
	if res.SwapLatency <= 0 {
		t.Fatal("swap latency unmeasured")
	}
	if !strings.Contains(StreamingTable(res).Markdown(), "runtime policy swap") {
		t.Fatal("table missing swap row")
	}
}

func TestStreamingRejectsBadConfig(t *testing.T) {
	if _, err := RunStreaming(StreamingConfig{Items: 5, SwapAt: 10}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestIRFLoopSchedulingSmall(t *testing.T) {
	cfg := IRFLoopConfig{
		Features: 150, Nodes: 10, WalltimeSeconds: 3600,
		MedianRunSeconds: 120, Sigma: 1.25, Allocations: 100, Seed: 7,
	}
	res, err := RunIRFLoopScheduling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 7 shape: dynamic explores several times more parameters per
	// allocation than set-synchronized.
	if res.Speedup < 2 {
		t.Fatalf("speedup = %.2f, want ≥2 on heavy-tailed runs", res.Speedup)
	}
	if res.Dynamic.Allocations >= res.SetSync.Allocations {
		t.Fatalf("dynamic took %d allocations vs baseline %d",
			res.Dynamic.Allocations, res.SetSync.Allocations)
	}
	// Fig. 6 shape: dynamic utilisation above baseline.
	if res.Dynamic.MeanUtilization <= res.SetSync.MeanUtilization {
		t.Fatal("dynamic utilisation not better")
	}
	fig := IRFUtilizationFigure(res)
	if len(fig.Series) != 2 {
		t.Fatal("Fig. 6 needs both series")
	}
	if !strings.Contains(IRFThroughputTable(res).Markdown(), "improvement") {
		t.Fatal("Fig. 7 table malformed")
	}
}

func TestRealIRFLoopRecoversBlocks(t *testing.T) {
	net, data, err := RunRealIRFLoop(16, 250, 9)
	if err != nil {
		t.Fatal(err)
	}
	frac := WithinBlockEdgeFraction(net, data, 20)
	// Block structure should dominate the top edges (random ≈ 0.25).
	if frac < 0.7 {
		t.Fatalf("within-block fraction of top edges = %.2f", frac)
	}
}

func TestBuildIRFCampaignSize(t *testing.T) {
	m, err := BuildIRFCampaign(100, 20, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Runs) != 100 {
		t.Fatalf("runs = %d", len(m.Runs))
	}
	if m.Campaign.Groups[0].Nodes != 20 {
		t.Fatalf("nodes = %d", m.Campaign.Groups[0].Nodes)
	}
}

func TestDebtContinuum(t *testing.T) {
	points, err := RunDebtContinuum()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	first, last := points[0], points[len(points)-1]
	if last.HumanSteps >= first.HumanSteps {
		t.Fatalf("continuum did not reduce human steps: %+v", points)
	}
	if last.AutomationFraction <= first.AutomationFraction {
		t.Fatal("automation fraction did not improve")
	}
	if last.DebtMinutes >= first.DebtMinutes {
		t.Fatal("debt did not shrink")
	}
	if last.HumanSteps != 0 {
		t.Fatalf("fully invested pipeline still has %d human steps", last.HumanSteps)
	}
	if !strings.Contains(DebtContinuumTable(points).Markdown(), "black-box") {
		t.Fatal("table malformed")
	}
}

// TestPaperScaleHeadlineClaims pins the paper's quantitative claims at full
// scale (skipped under -short): the Fig. 7 ≥4× scheduling improvement on
// the 1606-feature campaign and the Fig. 3 monotone budget sweep.
func TestPaperScaleHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	res, err := RunIRFLoopScheduling(DefaultIRFLoopConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < 4 {
		t.Fatalf("paper-scale speedup %.2f× below the expected ≥4× band (paper: >5×)", res.Speedup)
	}
	if res.Dynamic.MeanUtilization < 0.7 {
		t.Fatalf("dynamic utilisation %.2f below expectation", res.Dynamic.MeanUtilization)
	}
	if res.SetSync.MeanUtilization > 0.4 {
		t.Fatalf("baseline utilisation %.2f too high for the straggler regime", res.SetSync.MeanUtilization)
	}

	pts, err := RunCheckpointSweep(CheckpointSweepConfig{Seed: 2021, RunsPerBudget: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].MeanCheckpoints < pts[i-1].MeanCheckpoints-1e-9 {
			t.Fatalf("paper-scale Fig. 3 not monotone at %v", pts[i].Budget)
		}
	}
	if last := pts[len(pts)-1].MeanCheckpoints; last < 45 {
		t.Fatalf("50%% budget wrote only %.1f of 50", last)
	}
}
