package experiments

import (
	"fairflow/internal/core"
	"fairflow/internal/expt"
	"fairflow/internal/gauge"
	"fairflow/internal/schema"
	"fairflow/internal/skel"
)

// BuildReferenceWorkflow assembles a gauge-annotated model of the paper's
// GWAS pipeline: raw genotype columns → format wrangling → paste/assembly →
// association scan. It starts at black-box metadata so the continuum
// experiment can raise it stage by stage.
func BuildReferenceWorkflow() (*core.Workflow, *schema.Registry, error) {
	reg := schema.NewRegistry()
	formats := []schema.Format{
		{Name: "rawcol", Version: 1, Family: schema.ASCII, Kind: schema.Table,
			Fields: []schema.Field{{Name: "genotype", Type: schema.Int64}}},
		{Name: "genomatrix", Version: 1, Family: schema.ASCII, Kind: schema.Table,
			Fields: []schema.Field{{Name: "genotype", Type: schema.Int64, Shape: []int{0, 0}}}},
		{Name: "assoc", Version: 1, Family: schema.ASCII, Kind: schema.Table,
			Fields: []schema.Field{{Name: "snp", Type: schema.Int64}, {Name: "neglogp", Type: schema.Float64}}},
	}
	for _, f := range formats {
		if err := reg.Register(f); err != nil {
			return nil, nil, err
		}
	}
	pass := func(v any) (any, error) { return v, nil }
	if err := reg.AddConverter(schema.Converter{From: "rawcol@v1", To: "genomatrix@v1", Apply: pass}); err != nil {
		return nil, nil, err
	}

	mkComponent := func(name string, kind core.GranularityKind, ports []core.Port) *core.Component {
		return &core.Component{
			Name: name, Kind: kind,
			Assessment: gauge.NewAssessment(name),
			Ports:      ports,
		}
	}
	// The wrangling step is deliberately NOT a component: the source emits
	// raw per-sample columns while the assembler consumes the matrix format,
	// so the source→assembler edge carries the format mismatch that either a
	// human wrangles (low tiers) or the planner auto-converts (full schema).
	instrument := mkComponent("genotype-source", core.Executable, []core.Port{
		{Name: "columns", Direction: core.Out},
	})
	paste := mkComponent("paste-assembler", core.BundledWorkflow, []core.Port{
		{Name: "in", Direction: core.In},
		{Name: "matrix", Direction: core.Out},
	})
	scan := mkComponent("association-scan", core.Executable, []core.Port{
		{Name: "matrix", Direction: core.In},
		{Name: "hits", Direction: core.Out},
	})

	w := &core.Workflow{
		Name:       "gwas-pipeline",
		Components: []*core.Component{instrument, paste, scan},
		Edges: []core.Edge{
			{FromComponent: "genotype-source", FromPort: "columns", ToComponent: "paste-assembler", ToPort: "in"},
			{FromComponent: "paste-assembler", FromPort: "matrix", ToComponent: "association-scan", ToPort: "matrix"},
		},
	}
	return w, reg, nil
}

// annotateFormats attaches the format IDs the higher continuum stages
// assume (the metadata a schema investment records).
func annotateFormats(w *core.Workflow) {
	set := func(comp, port, format string) {
		c, _ := w.Component(comp)
		for i := range c.Ports {
			if c.Ports[i].Name == port {
				c.Ports[i].FormatID = format
			}
		}
	}
	set("genotype-source", "columns", "rawcol@v1")
	set("paste-assembler", "in", "genomatrix@v1") // mismatch vs rawcol@v1: the wrangling gap
	set("paste-assembler", "matrix", "genomatrix@v1")
	set("association-scan", "matrix", "genomatrix@v1")
	set("association-scan", "hits", "assoc@v1")
}

// RunDebtContinuum evaluates the reusability continuum on the reference
// workflow: at each cumulative metadata stage, how many human steps remain
// and what the modelled debt costs.
func RunDebtContinuum() ([]core.ContinuumPoint, error) {
	w, reg, err := BuildReferenceWorkflow()
	if err != nil {
		return nil, err
	}
	annotateFormats(w)
	// The final stage claims machine-actionable customizability for every
	// component, which requires each to carry a generation model.
	for _, c := range w.Components {
		c.Customization = &skel.ModelSpec{Name: c.Name + "-model", Fields: []skel.FieldSpec{
			{Name: "fan_in", Kind: skel.KindInt, Default: 64},
		}}
	}
	pl := &core.Planner{Formats: reg}
	stages := []core.ContinuumStage{
		{Label: "black-box", Raise: map[gauge.Axis]gauge.Tier{}},
		{Label: "+access/protocol", Raise: map[gauge.Axis]gauge.Tier{gauge.DataAccess: 1}},
		{Label: "+schema recorded", Raise: map[gauge.Axis]gauge.Tier{gauge.DataSchema: 2, gauge.DataAccess: 2}},
		{Label: "+full schema", Raise: map[gauge.Axis]gauge.Tier{gauge.DataSchema: 3, gauge.DataSemantics: 1}},
		{Label: "+launch templates", Raise: map[gauge.Axis]gauge.Tier{gauge.Granularity: 2, gauge.Customizability: 1}},
		{Label: "+generation models", Raise: map[gauge.Axis]gauge.Tier{gauge.Customizability: 2, gauge.Provenance: 2}},
	}
	return pl.Continuum(w, stages)
}

// DebtContinuumTable renders the continuum as a table.
func DebtContinuumTable(points []core.ContinuumPoint) *expt.Table {
	t := expt.NewTable("Reusability continuum — gauge investment vs remaining human effort (GWAS pipeline)",
		"metadata stage", "human steps", "automation fraction", "debt (min/reuse)")
	for _, p := range points {
		t.AddRow(p.Label, p.HumanSteps, p.AutomationFraction, p.DebtMinutes)
	}
	return t
}
