// Package experiments regenerates every figure of the paper's evaluation
// (Section V) from this repository's implementations. Each experiment
// returns its data as expt.Figure/expt.Table values; cmd/experiments renders
// them into EXPERIMENTS.md, and the benchmarks in the repository root drive
// the same entry points.
package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"fairflow/internal/expt"
	"fairflow/internal/gwas"
	"fairflow/internal/skel"
	"fairflow/internal/tabular"
)

// GWASPasteConfig sizes the Section V-A experiment.
type GWASPasteConfig struct {
	// Samples is the number of per-sample column files to paste.
	Samples int
	// SNPs is the rows per column file.
	SNPs int
	// FanIn is the paste fan-in limit.
	FanIn int
	// Parallelism for campaign-parallel execution.
	Parallelism int
	// WorkDir hosts the generated files (a temp dir if empty).
	WorkDir string
	// Seed drives the synthetic cohort.
	Seed int64
}

// DefaultGWASPasteConfig is a laptop-scale version of the paper's workload.
func DefaultGWASPasteConfig() GWASPasteConfig {
	return GWASPasteConfig{Samples: 192, SNPs: 2000, FanIn: 16, Parallelism: 8, Seed: 42}
}

// GWASPasteResult is the Fig. 2 data: the intervention comparison plus the
// paste-time ablation that the generated two-phase plan enables.
type GWASPasteResult struct {
	Interventions skel.InterventionCounts
	// SinglePhaseSeconds pastes all files in one pass (fan-in ignored) —
	// the "very slow if too many files are merged at once" regime.
	SinglePhaseSeconds float64
	// TwoPhaseSeconds runs the generated plan serially (one worker).
	TwoPhaseSeconds float64
	// CampaignSeconds runs the generated plan DAG-parallel: tasks release
	// the moment their own sources complete, no phase barrier.
	CampaignSeconds float64
	// Rows and Columns validate output shape.
	Rows, Columns int
	// GeneratedArtifacts is the number of files Skel generated.
	GeneratedArtifacts int
	// ManifestDigest fingerprints the generation (regeneration contract).
	ManifestDigest string
}

// RunGWASPaste executes the Section V-A experiment end to end: generate a
// synthetic cohort, write per-sample column files, generate the workflow
// with Skel, and execute single-phase, two-phase-serial and
// campaign-parallel pastes of the same data.
func RunGWASPaste(cfg GWASPasteConfig) (*GWASPasteResult, error) {
	if cfg.WorkDir == "" {
		dir, err := os.MkdirTemp("", "gwas-paste-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.WorkDir = dir
	}
	cohort, err := gwas.Generate(gwas.Config{
		SNPs: cfg.SNPs, Samples: cfg.Samples, CausalSNPs: 10,
		EffectSize: 0.8, MinMAF: 0.1, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	inputDir := filepath.Join(cfg.WorkDir, "columns")
	inputs := make([]string, cfg.Samples)
	for s := 0; s < cfg.Samples; s++ {
		inputs[s] = filepath.Join(inputDir, fmt.Sprintf("sample_%04d.txt", s))
		if err := tabular.WriteColumnBytes(inputs[s], cohort.SampleColumnBytes(s)); err != nil {
			return nil, err
		}
	}

	res := &GWASPasteResult{}
	res.Interventions, err = skel.CompareInterventions(cfg.Samples, cfg.FanIn)
	if err != nil {
		return nil, err
	}

	// Skel generation: the model is the single point of interaction.
	model := skel.Model{
		"dataset_dir": inputDir,
		"output_file": filepath.Join(cfg.WorkDir, "matrix.tsv"),
		"account":     "BIF101",
		"fan_in":      cfg.FanIn,
		"parallelism": cfg.Parallelism,
	}
	manifest, artifacts, err := skel.Generate(skel.PasteTemplates(), model)
	if err != nil {
		return nil, err
	}
	if err := skel.WriteArtifacts(filepath.Join(cfg.WorkDir, "generated"), artifacts); err != nil {
		return nil, err
	}
	res.GeneratedArtifacts = len(artifacts)
	res.ManifestDigest = manifest.Digest()

	// Ablation 1: single-phase paste of everything at once.
	start := time.Now()
	single := filepath.Join(cfg.WorkDir, "single.tsv")
	if _, err := tabular.PasteFiles(single, tabular.Options{}, inputs...); err != nil {
		return nil, err
	}
	res.SinglePhaseSeconds = time.Since(start).Seconds()

	// Ablation 2: the generated two-phase plan, serial execution.
	plan, err := tabular.PlanPaste(inputs, filepath.Join(cfg.WorkDir, "twophase.tsv"),
		filepath.Join(cfg.WorkDir, "work-serial"), cfg.FanIn)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	if _, err := plan.Execute(context.Background(), tabular.ExecOptions{Parallelism: 1}); err != nil {
		return nil, err
	}
	res.TwoPhaseSeconds = time.Since(start).Seconds()

	// Ablation 3: the same plan run as a DAG-parallel campaign; the row
	// count comes from the final paste task itself, not a re-scan.
	plan2, err := tabular.PlanPaste(inputs, filepath.Join(cfg.WorkDir, "campaign.tsv"),
		filepath.Join(cfg.WorkDir, "work-par"), cfg.FanIn)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	rows, err := plan2.Execute(context.Background(), tabular.ExecOptions{Parallelism: cfg.Parallelism})
	if err != nil {
		return nil, err
	}
	res.CampaignSeconds = time.Since(start).Seconds()
	res.Rows = rows
	cols, err := tabular.CountColumns(filepath.Join(cfg.WorkDir, "campaign.tsv"), tabular.Options{})
	if err != nil {
		return nil, err
	}
	res.Columns = cols
	if rows != cfg.SNPs || cols != cfg.Samples {
		return nil, fmt.Errorf("experiments: pasted matrix is %d×%d, want %d×%d", rows, cols, cfg.SNPs, cfg.Samples)
	}
	return res, nil
}

// GWASPasteTable renders the Fig. 2 comparison as a table.
func GWASPasteTable(r *GWASPasteResult) *expt.Table {
	t := expt.NewTable("Fig. 2 — manual vs model-driven GWAS paste workflow",
		"approach", "user interventions per re-run", "paste wall time (s)", "notes")
	t.AddRow("traditional manual script", r.Interventions.Manual,
		fmt.Sprintf("%.3f", r.SinglePhaseSeconds),
		fmt.Sprintf("%d sub-jobs hand-managed; single-phase paste", r.Interventions.SubJobs))
	t.AddRow("skel two-phase (serial)", r.Interventions.ModelDriven,
		fmt.Sprintf("%.3f", r.TwoPhaseSeconds), "generated plan, one submission")
	t.AddRow("skel + cheetah campaign (parallel)", r.Interventions.ModelDriven,
		fmt.Sprintf("%.3f", r.CampaignSeconds),
		fmt.Sprintf("%d generated artifacts, digest %.12s…", r.GeneratedArtifacts, r.ManifestDigest))
	return t
}
