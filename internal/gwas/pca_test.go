package gwas

import (
	"math"
	"testing"

	"fairflow/internal/expt"
)

func stratConfig() Config {
	return Config{SNPs: 600, Samples: 240, CausalSNPs: 4, EffectSize: 1.2, MinMAF: 0.1, Seed: 21}
}

func TestTopPCSeparatesPopulations(t *testing.T) {
	c, pop, err := GenerateStratified(stratConfig(), 0.25, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := TopPC(c, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pc) != c.Samples() {
		t.Fatalf("pc length = %d", len(pc))
	}
	// Unit norm.
	var ss float64
	for _, v := range pc {
		ss += v * v
	}
	if math.Abs(ss-1) > 1e-9 {
		t.Fatalf("pc norm² = %v", ss)
	}
	// The PC must separate the two populations: the means of the two
	// groups' scores should differ strongly relative to their spread.
	var a, b []float64
	for s, v := range pc {
		if pop[s] == 0 {
			a = append(a, v)
		} else {
			b = append(b, v)
		}
	}
	sa, sb := expt.Summarize(a), expt.Summarize(b)
	gap := math.Abs(sa.Mean - sb.Mean)
	spread := (sa.Stddev + sb.Stddev) / 2
	if gap < 2*spread {
		t.Fatalf("PC does not separate populations: gap %.4f vs spread %.4f", gap, spread)
	}
}

func TestTopPCValidation(t *testing.T) {
	c, _ := Generate(Config{SNPs: 5, Samples: 3, CausalSNPs: 0, MinMAF: 0.2, Seed: 1})
	if _, err := TopPC(c, 5, 1); err != nil {
		t.Fatal(err)
	}
	tiny := &Cohort{Genotypes: [][]int8{{1}}, Phenotype: []float64{0}}
	if _, err := TopPC(tiny, 5, 1); err == nil {
		t.Fatal("single-sample PCA accepted")
	}
	// A monomorphic cohort has no variance for the PC to find.
	flat := &Cohort{
		Genotypes: [][]int8{{1, 1, 1, 1}},
		Phenotype: make([]float64, 4),
	}
	if _, err := TopPC(flat, 5, 1); err == nil {
		t.Fatal("variance-free cohort accepted")
	}
}

func TestAdjustedScanDeflatesStratification(t *testing.T) {
	cfg := stratConfig()
	cfg.CausalSNPs = 0 // pure null + stratification: any signal is inflation
	c, _, err := GenerateStratified(cfg, 0.3, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Scan(c)
	if err != nil {
		t.Fatal(err)
	}
	lambdaNaive := GenomicInflation(naive)
	if lambdaNaive < 1.3 {
		t.Fatalf("stratified null not inflated: λ = %.2f", lambdaNaive)
	}

	pc, err := TopPC(c, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	adjusted, err := ScanAdjusted(c, pc)
	if err != nil {
		t.Fatal(err)
	}
	lambdaAdj := GenomicInflation(adjusted)
	if lambdaAdj > lambdaNaive*0.7 {
		t.Fatalf("adjustment did not deflate: λ %.2f → %.2f", lambdaNaive, lambdaAdj)
	}
	if lambdaAdj > 1.35 {
		t.Fatalf("adjusted scan still inflated: λ = %.2f", lambdaAdj)
	}
}

func TestAdjustedScanKeepsRealSignal(t *testing.T) {
	c, _, err := GenerateStratified(stratConfig(), 0.25, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := TopPC(c, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	adjusted, err := ScanAdjusted(c, pc)
	if err != nil {
		t.Fatal(err)
	}
	if r := Recall(c, adjusted, 12); r < 0.5 {
		t.Fatalf("adjusted scan lost the causal SNPs: recall %.2f", r)
	}
}

func TestScanAdjustedValidation(t *testing.T) {
	c, _ := Generate(Config{SNPs: 10, Samples: 20, CausalSNPs: 0, MinMAF: 0.2, Seed: 4})
	if _, err := ScanAdjusted(c, make([]float64, 3)); err == nil {
		t.Fatal("covariate length mismatch accepted")
	}
}

func TestGenomicInflationNullIsCalm(t *testing.T) {
	cfg := smallConfig()
	cfg.CausalSNPs = 0
	c, _ := Generate(cfg)
	assocs, _ := Scan(c)
	lambda := GenomicInflation(assocs)
	if lambda < 0.7 || lambda > 1.3 {
		t.Fatalf("unstratified null λ = %.2f, want ≈ 1", lambda)
	}
	if !math.IsNaN(GenomicInflation(nil)) {
		t.Fatal("empty scan should give NaN")
	}
}
