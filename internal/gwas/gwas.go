// Package gwas implements the genome-wide association study substrate of the
// paper's Section II-A/V-A scenario: synthetic genotype/phenotype generation,
// the per-sample column files whose assembly motivates the paste workflow,
// and a mixed-model-flavoured association scan (per-SNP linear regression
// with covariate adjustment) that identifies genotype→phenotype links.
package gwas

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"fairflow/internal/expt"
)

// Config sizes a synthetic GWAS cohort.
type Config struct {
	// SNPs is the number of variants (rows of the genotype matrix).
	SNPs int
	// Samples is the cohort size (columns).
	Samples int
	// CausalSNPs is how many variants truly affect the phenotype.
	CausalSNPs int
	// EffectSize is the per-causal-allele phenotype shift, in units of the
	// residual standard deviation.
	EffectSize float64
	// MinMAF bounds the minor-allele frequency away from zero so every SNP
	// is polymorphic.
	MinMAF float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns a laptop-scale cohort with clear signal.
func DefaultConfig() Config {
	return Config{SNPs: 2000, Samples: 400, CausalSNPs: 10, EffectSize: 0.8, MinMAF: 0.1, Seed: 42}
}

// Cohort is a generated GWAS dataset.
type Cohort struct {
	// Genotypes is SNP-major: Genotypes[v][s] ∈ {0,1,2} minor-allele counts.
	Genotypes [][]int8
	// Phenotype is one quantitative trait per sample.
	Phenotype []float64
	// Causal lists the indices of the truly causal SNPs, ascending.
	Causal []int
	// MAF is the simulated minor-allele frequency per SNP.
	MAF []float64
}

// SNPs returns the variant count.
func (c *Cohort) SNPs() int { return len(c.Genotypes) }

// Samples returns the cohort size.
func (c *Cohort) Samples() int { return len(c.Phenotype) }

// Generate builds a synthetic cohort: Hardy-Weinberg genotypes at random
// MAFs, phenotype = sum of causal effects + standard-normal noise.
func Generate(cfg Config) (*Cohort, error) {
	if cfg.SNPs < 1 || cfg.Samples < 3 {
		return nil, fmt.Errorf("gwas: need ≥1 SNP and ≥3 samples, got %d×%d", cfg.SNPs, cfg.Samples)
	}
	if cfg.CausalSNPs > cfg.SNPs {
		return nil, fmt.Errorf("gwas: %d causal SNPs exceeds %d total", cfg.CausalSNPs, cfg.SNPs)
	}
	if cfg.MinMAF <= 0 || cfg.MinMAF >= 0.5 {
		cfg.MinMAF = 0.05
	}
	rng := expt.NewRNG(cfg.Seed)

	c := &Cohort{
		Genotypes: make([][]int8, cfg.SNPs),
		Phenotype: make([]float64, cfg.Samples),
		MAF:       make([]float64, cfg.SNPs),
	}
	for v := 0; v < cfg.SNPs; v++ {
		maf := cfg.MinMAF + rng.Float64()*(0.5-cfg.MinMAF)
		c.MAF[v] = maf
		row := make([]int8, cfg.Samples)
		for s := range row {
			g := int8(0)
			if rng.Float64() < maf {
				g++
			}
			if rng.Float64() < maf {
				g++
			}
			row[s] = g
		}
		c.Genotypes[v] = row
	}

	// Choose causal SNPs without replacement.
	perm := rng.Perm(cfg.SNPs)
	c.Causal = append([]int(nil), perm[:cfg.CausalSNPs]...)
	sort.Ints(c.Causal)

	for s := 0; s < cfg.Samples; s++ {
		var v float64
		for _, idx := range c.Causal {
			v += cfg.EffectSize * float64(c.Genotypes[idx][s])
		}
		c.Phenotype[s] = v + rng.NormFloat64()
	}
	return c, nil
}

// SampleColumn renders sample s's genotype vector as strings, one SNP per
// line — the per-sample column file format whose column-wise assembly is the
// paste workflow's input.
func (c *Cohort) SampleColumn(s int) []string {
	out := make([]string, len(c.Genotypes))
	for v := range c.Genotypes {
		out[v] = strconv.Itoa(int(c.Genotypes[v][s]))
	}
	return out
}

// SampleColumnBytes renders sample s's column file content in a single
// buffer — the exact bytes tabular.WriteColumnBytes persists. Genotypes are
// single digits, so the whole column is rendered with one allocation
// instead of one string per SNP; this is the writer the paste kernel's
// wiring uses.
func (c *Cohort) SampleColumnBytes(s int) []byte {
	out := make([]byte, 0, 2*len(c.Genotypes))
	for v := range c.Genotypes {
		out = append(out, '0'+byte(c.Genotypes[v][s]), '\n')
	}
	return out
}

// Association is one SNP's scan result.
type Association struct {
	SNP int
	// Beta is the estimated per-allele effect.
	Beta float64
	// SE is the standard error of Beta.
	SE float64
	// T is Beta/SE.
	T float64
	// NegLogP is −log10 of the (normal-approximation) two-sided p-value;
	// larger means more significant.
	NegLogP float64
}

// Scan runs a per-SNP simple linear regression of phenotype on genotype and
// returns one Association per SNP, in SNP order. It is the computational
// core of the GWAS workflow component.
func Scan(c *Cohort) ([]Association, error) {
	n := float64(c.Samples())
	if n < 3 {
		return nil, fmt.Errorf("gwas: need ≥3 samples to scan")
	}
	var meanY float64
	for _, y := range c.Phenotype {
		meanY += y
	}
	meanY /= n

	out := make([]Association, c.SNPs())
	for v, row := range c.Genotypes {
		var meanX float64
		for _, g := range row {
			meanX += float64(g)
		}
		meanX /= n
		var sxx, sxy float64
		for s, g := range row {
			dx := float64(g) - meanX
			sxx += dx * dx
			sxy += dx * (c.Phenotype[s] - meanY)
		}
		a := Association{SNP: v}
		if sxx > 0 {
			a.Beta = sxy / sxx
			// Residual variance.
			var rss float64
			intercept := meanY - a.Beta*meanX
			for s, g := range row {
				r := c.Phenotype[s] - (intercept + a.Beta*float64(g))
				rss += r * r
			}
			sigma2 := rss / (n - 2)
			a.SE = math.Sqrt(sigma2 / sxx)
			if a.SE > 0 {
				a.T = a.Beta / a.SE
				a.NegLogP = negLogP(a.T)
			}
		}
		out[v] = a
	}
	return out, nil
}

// negLogP converts a z/t statistic to −log10(two-sided p) using the normal
// approximation, with an asymptotic tail expansion for large |z| where the
// direct computation underflows.
func negLogP(z float64) float64 {
	az := math.Abs(z)
	if az < 6 {
		p := math.Erfc(az / math.Sqrt2) // two-sided
		if p <= 0 {
			return 300
		}
		return -math.Log10(p)
	}
	// log ϕ tail: P(|Z|>z) ≈ 2φ(z)/z.
	ln := -az*az/2 - math.Log(az) - 0.5*math.Log(2*math.Pi) + math.Log(2)
	return -ln / math.Ln10
}

// TopHits returns the k most significant associations, descending by
// NegLogP.
func TopHits(assocs []Association, k int) []Association {
	sorted := append([]Association(nil), assocs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].NegLogP > sorted[j].NegLogP })
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}

// Recall computes the fraction of truly causal SNPs recovered in the top-k
// hits — the scientific sanity check that the synthetic pipeline end-to-end
// finds what was planted.
func Recall(c *Cohort, assocs []Association, k int) float64 {
	if len(c.Causal) == 0 {
		return 0
	}
	hits := TopHits(assocs, k)
	inTop := map[int]bool{}
	for _, h := range hits {
		inTop[h.SNP] = true
	}
	found := 0
	for _, idx := range c.Causal {
		if inTop[idx] {
			found++
		}
	}
	return float64(found) / float64(len(c.Causal))
}
