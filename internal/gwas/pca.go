package gwas

import (
	"fmt"
	"math"

	"fairflow/internal/expt"
)

// TopPC computes the leading principal component of the samples in genotype
// space via power iteration on the centred genotype matrix — the standard
// population-structure axis that mixed-model GWAS adjusts for. It returns
// one score per sample, unit-normalised.
func TopPC(c *Cohort, iterations int, seed int64) ([]float64, error) {
	n := c.Samples()
	m := c.SNPs()
	if n < 2 || m < 1 {
		return nil, fmt.Errorf("gwas: PCA needs ≥2 samples and ≥1 SNP")
	}
	if iterations < 1 {
		iterations = 30
	}
	// Column (SNP) means for centring.
	means := make([]float64, m)
	for v, row := range c.Genotypes {
		var sum float64
		for _, g := range row {
			sum += float64(g)
		}
		means[v] = sum / float64(n)
	}

	rng := expt.NewRNG(seed)
	vec := make([]float64, n)
	for i := range vec {
		vec[i] = rng.NormFloat64()
	}
	normalize(vec)

	// Power iteration on the n×n sample-covariance operator: w = Xᵀ(Xv)
	// where X is the centred SNP×sample matrix.
	tmp := make([]float64, m)
	next := make([]float64, n)
	for it := 0; it < iterations; it++ {
		for v := 0; v < m; v++ {
			var dot float64
			row := c.Genotypes[v]
			mean := means[v]
			for s := 0; s < n; s++ {
				dot += (float64(row[s]) - mean) * vec[s]
			}
			tmp[v] = dot
		}
		for s := 0; s < n; s++ {
			next[s] = 0
		}
		for v := 0; v < m; v++ {
			row := c.Genotypes[v]
			mean := means[v]
			t := tmp[v]
			for s := 0; s < n; s++ {
				next[s] += (float64(row[s]) - mean) * t
			}
		}
		copy(vec, next)
		if !normalize(vec) {
			return nil, fmt.Errorf("gwas: power iteration collapsed (no variance)")
		}
	}
	return vec, nil
}

// normalize scales the vector to unit length; false when it is ~zero.
func normalize(v []float64) bool {
	var ss float64
	for _, x := range v {
		ss += x * x
	}
	if ss < 1e-30 {
		return false
	}
	inv := 1 / math.Sqrt(ss)
	for i := range v {
		v[i] *= inv
	}
	return true
}

// ScanAdjusted runs the per-SNP association scan with a covariate vector
// regressed out of both the phenotype and each genotype first (the
// two-stage approximation of a mixed model's fixed-effect adjustment).
// Passing the TopPC scores removes population-stratification inflation.
func ScanAdjusted(c *Cohort, covariate []float64) ([]Association, error) {
	n := c.Samples()
	if len(covariate) != n {
		return nil, fmt.Errorf("gwas: covariate has %d entries for %d samples", len(covariate), n)
	}
	residY := residualize(c.Phenotype, covariate)

	adjusted := &Cohort{
		Genotypes: c.Genotypes,
		Phenotype: residY,
		Causal:    c.Causal,
		MAF:       c.MAF,
	}
	// Residualising every SNP against the covariate is equivalent to
	// including it in each regression; do it on the fly per SNP.
	assocs := make([]Association, c.SNPs())
	base, err := scanResidualized(adjusted, covariate)
	if err != nil {
		return nil, err
	}
	copy(assocs, base)
	return assocs, nil
}

// residualize returns y minus its projection on x (both centred).
func residualize(y, x []float64) []float64 {
	n := float64(len(y))
	var my, mx float64
	for i := range y {
		my += y[i]
		mx += x[i]
	}
	my /= n
	mx /= n
	var sxy, sxx float64
	for i := range y {
		dx := x[i] - mx
		sxy += dx * (y[i] - my)
		sxx += dx * dx
	}
	beta := 0.0
	if sxx > 0 {
		beta = sxy / sxx
	}
	out := make([]float64, len(y))
	for i := range y {
		out[i] = (y[i] - my) - beta*(x[i]-mx)
	}
	return out
}

// scanResidualized scans with each SNP residualised against the covariate.
func scanResidualized(c *Cohort, covariate []float64) ([]Association, error) {
	n := float64(c.Samples())
	if n < 3 {
		return nil, fmt.Errorf("gwas: need ≥3 samples to scan")
	}
	out := make([]Association, c.SNPs())
	geno := make([]float64, c.Samples())
	for v, row := range c.Genotypes {
		for s, g := range row {
			geno[s] = float64(g)
		}
		rx := residualize(geno, covariate)
		a := Association{SNP: v}
		var sxx, sxy float64
		for s := range rx {
			sxx += rx[s] * rx[s]
			sxy += rx[s] * c.Phenotype[s]
		}
		if sxx > 0 {
			a.Beta = sxy / sxx
			var rss float64
			for s := range rx {
				r := c.Phenotype[s] - a.Beta*rx[s]
				rss += r * r
			}
			// One extra degree of freedom consumed by the covariate.
			sigma2 := rss / (n - 3)
			a.SE = math.Sqrt(sigma2 / sxx)
			if a.SE > 0 {
				a.T = a.Beta / a.SE
				a.NegLogP = negLogP(a.T)
			}
		}
		out[v] = a
	}
	return out, nil
}

// GenerateStratified builds a structured cohort: two subpopulations with
// systematically different allele frequencies (drift up to fst per SNP) and
// a phenotype offset popShift between them. Scanning such a cohort naively
// inflates null-SNP statistics — the failure mode the PC-adjusted scan
// corrects.
func GenerateStratified(cfg Config, fst, popShift float64) (*Cohort, []int, error) {
	if cfg.SNPs < 1 || cfg.Samples < 4 {
		return nil, nil, fmt.Errorf("gwas: stratified cohort needs ≥1 SNP and ≥4 samples")
	}
	if cfg.MinMAF <= 0 || cfg.MinMAF >= 0.5 {
		cfg.MinMAF = 0.05
	}
	rng := expt.NewRNG(cfg.Seed)
	c := &Cohort{
		Genotypes: make([][]int8, cfg.SNPs),
		Phenotype: make([]float64, cfg.Samples),
		MAF:       make([]float64, cfg.SNPs),
	}
	pop := make([]int, cfg.Samples)
	for s := range pop {
		if s >= cfg.Samples/2 {
			pop[s] = 1
		}
	}
	clamp := func(x float64) float64 {
		if x < 0.02 {
			return 0.02
		}
		if x > 0.98 {
			return 0.98
		}
		return x
	}
	for v := 0; v < cfg.SNPs; v++ {
		base := cfg.MinMAF + rng.Float64()*(0.5-cfg.MinMAF)
		drift := (rng.Float64()*2 - 1) * fst
		mafs := [2]float64{clamp(base), clamp(base + drift)}
		c.MAF[v] = base
		row := make([]int8, cfg.Samples)
		for s := range row {
			maf := mafs[pop[s]]
			g := int8(0)
			if rng.Float64() < maf {
				g++
			}
			if rng.Float64() < maf {
				g++
			}
			row[s] = g
		}
		c.Genotypes[v] = row
	}
	perm := rng.Perm(cfg.SNPs)
	c.Causal = append([]int(nil), perm[:cfg.CausalSNPs]...)
	sortInts(c.Causal)
	for s := 0; s < cfg.Samples; s++ {
		var v float64
		for _, idx := range c.Causal {
			v += cfg.EffectSize * float64(c.Genotypes[idx][s])
		}
		v += popShift * float64(pop[s])
		c.Phenotype[s] = v + rng.NormFloat64()
	}
	return c, pop, nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// GenomicInflation computes the genomic-control λ: the median χ² statistic
// of the scan divided by the null median (0.456). λ ≈ 1 means well-
// calibrated; λ ≫ 1 signals stratification inflation — the diagnostic that
// motivates the adjusted scan.
func GenomicInflation(assocs []Association) float64 {
	if len(assocs) == 0 {
		return math.NaN()
	}
	chis := make([]float64, len(assocs))
	for i, a := range assocs {
		chis[i] = a.T * a.T
	}
	med := expt.Summarize(chis).Median
	return med / 0.456
}
