package gwas

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	return Config{SNPs: 300, Samples: 250, CausalSNPs: 5, EffectSize: 1.0, MinMAF: 0.15, Seed: 11}
}

func TestGenerateShapeAndRanges(t *testing.T) {
	c, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.SNPs() != 300 || c.Samples() != 250 {
		t.Fatalf("shape = %d×%d", c.SNPs(), c.Samples())
	}
	for v, row := range c.Genotypes {
		for _, g := range row {
			if g < 0 || g > 2 {
				t.Fatalf("genotype out of range at SNP %d: %d", v, g)
			}
		}
		if c.MAF[v] < 0.15 || c.MAF[v] >= 0.5 {
			t.Fatalf("MAF out of range: %v", c.MAF[v])
		}
	}
	if len(c.Causal) != 5 {
		t.Fatalf("causal count = %d", len(c.Causal))
	}
	for i := 1; i < len(c.Causal); i++ {
		if c.Causal[i] <= c.Causal[i-1] {
			t.Fatal("causal indices not strictly ascending")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{SNPs: 0, Samples: 10}); err == nil {
		t.Fatal("zero SNPs accepted")
	}
	if _, err := Generate(Config{SNPs: 5, Samples: 2}); err == nil {
		t.Fatal("two samples accepted")
	}
	if _, err := Generate(Config{SNPs: 5, Samples: 10, CausalSNPs: 9}); err == nil {
		t.Fatal("causal > SNPs accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(smallConfig())
	b, _ := Generate(smallConfig())
	if a.Phenotype[0] != b.Phenotype[0] || a.Genotypes[10][10] != b.Genotypes[10][10] {
		t.Fatal("same seed diverged")
	}
}

func TestSampleColumnMatchesMatrix(t *testing.T) {
	c, _ := Generate(smallConfig())
	col := c.SampleColumn(3)
	if len(col) != c.SNPs() {
		t.Fatalf("column length = %d", len(col))
	}
	if col[7] != string(rune('0'+c.Genotypes[7][3])) {
		t.Fatalf("cell mismatch: %q vs %d", col[7], c.Genotypes[7][3])
	}
}

func TestSampleColumnBytesMatchesStrings(t *testing.T) {
	c, _ := Generate(smallConfig())
	got := c.SampleColumnBytes(3)
	var want strings.Builder
	for _, cell := range c.SampleColumn(3) {
		want.WriteString(cell)
		want.WriteByte('\n')
	}
	if string(got) != want.String() {
		t.Fatal("SampleColumnBytes diverges from SampleColumn rendering")
	}
}

func TestScanRecoversCausalSNPs(t *testing.T) {
	c, _ := Generate(smallConfig())
	assocs, err := Scan(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(assocs) != c.SNPs() {
		t.Fatalf("assoc count = %d", len(assocs))
	}
	if r := Recall(c, assocs, 10); r < 0.8 {
		t.Fatalf("recall@10 = %.2f, want ≥ 0.8 with effect size 1.0", r)
	}
}

func TestScanNullSNPsAreInsignificant(t *testing.T) {
	cfg := smallConfig()
	cfg.CausalSNPs = 0
	c, _ := Generate(cfg)
	assocs, _ := Scan(c)
	// Under the null, −log10(p) > 4 (p < 1e-4) should be very rare among
	// 300 SNPs.
	extreme := 0
	for _, a := range assocs {
		if a.NegLogP > 4 {
			extreme++
		}
	}
	if extreme > 2 {
		t.Fatalf("%d null SNPs look significant", extreme)
	}
}

func TestTopHitsSortedAndBounded(t *testing.T) {
	c, _ := Generate(smallConfig())
	assocs, _ := Scan(c)
	hits := TopHits(assocs, 20)
	if len(hits) != 20 {
		t.Fatalf("hits = %d", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].NegLogP > hits[i-1].NegLogP {
			t.Fatal("hits not sorted")
		}
	}
	if got := TopHits(assocs, 10_000); len(got) != len(assocs) {
		t.Fatalf("oversized k returned %d", len(got))
	}
	// TopHits must not mutate its input order.
	if assocs[0].SNP != 0 || assocs[1].SNP != 1 {
		t.Fatal("TopHits reordered the input slice")
	}
}

func TestNegLogPMonotoneInZ(t *testing.T) {
	f := func(raw uint16) bool {
		z := float64(raw) / 1000 // 0..65.5, crossing the asymptotic switch
		return negLogP(z+0.1) >= negLogP(z)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNegLogPKnownValues(t *testing.T) {
	// z=1.96 → two-sided p ≈ 0.05 → −log10 ≈ 1.30.
	if got := negLogP(1.96); math.Abs(got-1.30) > 0.02 {
		t.Fatalf("negLogP(1.96) = %v", got)
	}
	// z=0 → p=1 → 0.
	if got := negLogP(0); got != 0 {
		t.Fatalf("negLogP(0) = %v", got)
	}
	// Large z must stay finite and large.
	if got := negLogP(40); math.IsInf(got, 0) || got < 100 {
		t.Fatalf("negLogP(40) = %v", got)
	}
}

func TestRecallNoCausal(t *testing.T) {
	cfg := smallConfig()
	cfg.CausalSNPs = 0
	c, _ := Generate(cfg)
	assocs, _ := Scan(c)
	if Recall(c, assocs, 10) != 0 {
		t.Fatal("recall with no causal SNPs should be 0")
	}
}

func TestScanConstantGenotypeSNP(t *testing.T) {
	c, _ := Generate(smallConfig())
	// Force SNP 0 monomorphic; its association must be zero, not NaN.
	for s := range c.Genotypes[0] {
		c.Genotypes[0][s] = 1
	}
	assocs, err := Scan(c)
	if err != nil {
		t.Fatal(err)
	}
	a := assocs[0]
	if a.Beta != 0 || a.T != 0 || a.NegLogP != 0 {
		t.Fatalf("monomorphic SNP association: %+v", a)
	}
	if math.IsNaN(a.Beta) || math.IsNaN(a.NegLogP) {
		t.Fatal("NaN in monomorphic SNP")
	}
}
