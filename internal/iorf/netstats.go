package iorf

import "sort"

// NetworkStats summarises an iRF-LOOP network's structure — the
// post-processing a predictive-expression-network analysis applies before
// interpretation.
type NetworkStats struct {
	// Nodes is the feature count.
	Nodes int
	// Edges counts non-zero directed edges.
	Edges int
	// Density is Edges / (Nodes × (Nodes − 1)).
	Density float64
	// Reciprocity is the fraction of edges (i→j) whose reverse (j→i) is
	// also present — high for the symmetric latent-factor structure of the
	// census generator.
	Reciprocity float64
	// MeanOutStrength is the average row sum (≈1 for normalised rows with
	// any signal).
	MeanOutStrength float64
}

// Stats computes structural statistics over the network at the given edge
// weight threshold (edges below min are ignored).
func (n *Network) Stats(min float64) NetworkStats {
	s := NetworkStats{Nodes: len(n.Adjacency)}
	if s.Nodes == 0 {
		return s
	}
	var reciprocal int
	var strength float64
	for i, row := range n.Adjacency {
		for j, w := range row {
			strength += w
			if i == j || w < min || w == 0 {
				continue
			}
			s.Edges++
			if rev := n.Adjacency[j][i]; rev >= min && rev > 0 {
				reciprocal++
			}
		}
	}
	if s.Edges > 0 {
		s.Reciprocity = float64(reciprocal) / float64(s.Edges)
	}
	if s.Nodes > 1 {
		s.Density = float64(s.Edges) / float64(s.Nodes*(s.Nodes-1))
	}
	s.MeanOutStrength = strength / float64(s.Nodes)
	return s
}

// Hubs returns the k features with the highest out-strength: column j of
// the adjacency sums feature j's importance in predicting every other
// feature, so high columns are the network's most influential predictors —
// the hub regulators in the expression-network reading.
func (n *Network) Hubs(k int) []Edge {
	type hub struct {
		idx      int
		strength float64
	}
	hubs := make([]hub, len(n.Adjacency))
	for j := range n.Adjacency {
		hubs[j].idx = j
	}
	for _, row := range n.Adjacency {
		for j, w := range row {
			hubs[j].strength += w
		}
	}
	sort.Slice(hubs, func(a, b int) bool {
		if hubs[a].strength != hubs[b].strength {
			return hubs[a].strength > hubs[b].strength
		}
		return hubs[a].idx < hubs[b].idx
	})
	if k > len(hubs) {
		k = len(hubs)
	}
	out := make([]Edge, k)
	for i := 0; i < k; i++ {
		out[i] = Edge{From: n.FeatureNames[hubs[i].idx], Weight: hubs[i].strength}
	}
	return out
}

// ConnectedComponents returns the sizes of weakly connected components at
// the given threshold, descending — a quick view of whether the network is
// one fabric or disjoint clusters (the census generator's blocks should
// appear as distinct components at high thresholds).
func (n *Network) ConnectedComponents(min float64) []int {
	size := len(n.Adjacency)
	parent := make([]int, size)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i, row := range n.Adjacency {
		for j, w := range row {
			if i != j && w >= min && w > 0 {
				union(i, j)
			}
		}
	}
	counts := map[int]int{}
	for i := range parent {
		counts[find(i)]++
	}
	out := make([]int, 0, len(counts))
	for _, c := range counts {
		out = append(out, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
