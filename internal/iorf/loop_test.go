package iorf

import (
	"math"
	"testing"

	"fairflow/internal/expt"
)

// chainData builds a feature chain: f0 ~ N(0,1), f1 = f0 + ε, f2 = f1 + ε,
// plus independent distractors. iRF-LOOP should recover the chain edges.
func chainData(n int, distractors int, seed int64) ([][]float64, []string) {
	rng := expt.NewRNG(seed)
	total := 3 + distractors
	X := make([][]float64, n)
	names := make([]string, total)
	names[0], names[1], names[2] = "f0", "f1", "f2"
	for d := 0; d < distractors; d++ {
		names[3+d] = "noise"
	}
	for i := range X {
		row := make([]float64, total)
		row[0] = rng.NormFloat64()
		row[1] = row[0] + 0.2*rng.NormFloat64()
		row[2] = row[1] + 0.2*rng.NormFloat64()
		for d := 0; d < distractors; d++ {
			row[3+d] = rng.NormFloat64()
		}
		X[i] = row
	}
	return X, names
}

func loopConfig(seed int64) LoopConfig {
	return LoopConfig{
		IRF: IRFConfig{
			Forest:      ForestConfig{Trees: 20, Tree: TreeConfig{MaxDepth: 6, MinLeaf: 3, MTry: 2}, Seed: seed},
			Iterations:  2,
			WeightFloor: 0.05,
		},
		Parallelism: 4,
	}
}

func TestRunLOOPShapeAndInvariants(t *testing.T) {
	X, names := chainData(200, 3, 1)
	net, err := RunLOOP(X, names, loopConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	n := len(names)
	if len(net.Adjacency) != n || len(net.RunSeconds) != n {
		t.Fatalf("network shape: %d rows", len(net.Adjacency))
	}
	for i, row := range net.Adjacency {
		if len(row) != n {
			t.Fatalf("row %d width %d", i, len(row))
		}
		if row[i] != 0 {
			t.Fatalf("diagonal not zero at %d: %v", i, row[i])
		}
		var sum float64
		for _, w := range row {
			if w < 0 {
				t.Fatalf("negative weight in row %d", i)
			}
			sum += w
		}
		if sum > 0 && math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestRunLOOPRecoversChainEdges(t *testing.T) {
	X, names := chainData(250, 4, 3)
	net, err := RunLOOP(X, names, loopConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	// Predicting f1, the strongest predictors must be f0 or f2 (its chain
	// neighbours), never a distractor.
	row := net.Adjacency[1]
	best := 0
	for f, w := range row {
		if w > row[best] {
			best = f
		}
	}
	if best != 0 && best != 2 {
		t.Fatalf("f1's best predictor is feature %d (%s): %v", best, names[best], row)
	}
	// Distractor importance should be collectively small.
	var distractor float64
	for f := 3; f < len(names); f++ {
		distractor += row[f]
	}
	if distractor > 0.3 {
		t.Fatalf("distractors carry %.2f of f1's importance", distractor)
	}
}

func TestRunLOOPValidation(t *testing.T) {
	if _, err := RunLOOP(nil, nil, loopConfig(1)); err == nil {
		t.Fatal("empty matrix accepted")
	}
	X := [][]float64{{1}, {2}}
	if _, err := RunLOOP(X, nil, loopConfig(1)); err == nil {
		t.Fatal("single feature accepted")
	}
	X2 := [][]float64{{1, 2}, {2, 3}}
	if _, err := RunLOOP(X2, []string{"only-one"}, loopConfig(1)); err == nil {
		t.Fatal("name/width mismatch accepted")
	}
}

func TestRunLOOPDefaultNames(t *testing.T) {
	X, _ := chainData(60, 0, 5)
	net, err := RunLOOP(X, nil, loopConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	if net.FeatureNames[0] != "f0000" {
		t.Fatalf("default names: %v", net.FeatureNames[:3])
	}
}

func TestLoopFitFeatureTargetBounds(t *testing.T) {
	X, _ := chainData(50, 0, 7)
	if _, err := LoopFitFeature(X, -1, loopConfig(1).IRF); err == nil {
		t.Fatal("negative target accepted")
	}
	if _, err := LoopFitFeature(X, 99, loopConfig(1).IRF); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}

func TestTopEdgesSortedDescending(t *testing.T) {
	X, names := chainData(150, 2, 8)
	net, err := RunLOOP(X, names, loopConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	edges := net.TopEdges(10)
	if len(edges) == 0 {
		t.Fatal("no edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i].Weight > edges[i-1].Weight {
			t.Fatal("edges not sorted")
		}
	}
	huge := net.TopEdges(1 << 20)
	if len(huge) == 0 || len(huge) > len(names)*len(names) {
		t.Fatalf("oversized k returned %d edges", len(huge))
	}
}

func TestThresholdZeroesSmallEntries(t *testing.T) {
	net := &Network{
		FeatureNames: []string{"a", "b"},
		Adjacency:    [][]float64{{0, 0.8}, {0.1, 0}},
	}
	got := net.Threshold(0.5)
	if got[0][1] != 0.8 || got[1][0] != 0 {
		t.Fatalf("threshold: %v", got)
	}
	// Original untouched.
	if net.Adjacency[1][0] != 0.1 {
		t.Fatal("Threshold mutated the network")
	}
}

func TestRunLOOPDeterministic(t *testing.T) {
	X, names := chainData(100, 2, 10)
	a, err := RunLOOP(X, names, loopConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLOOP(X, names, loopConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Adjacency {
		for j := range a.Adjacency[i] {
			if a.Adjacency[i][j] != b.Adjacency[i][j] {
				t.Fatalf("LOOP not deterministic at (%d,%d)", i, j)
			}
		}
	}
}
