package iorf

import (
	"testing"

	"fairflow/internal/expt"
)

// interactionData builds y = x0·x1 (pure interaction, no marginal effect in
// isolation strong enough to matter) plus distractors: the signature
// workload RIT exists to crack.
func interactionData(n, features int, seed int64) ([][]float64, []float64) {
	rng := expt.NewRNG(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, features)
		for f := range row {
			row[f] = rng.NormFloat64()
		}
		X[i] = row
		y[i] = row[0] * row[1]
	}
	return X, y
}

func TestIntersect(t *testing.T) {
	got := intersect([]int{1, 3, 5, 7}, []int{3, 4, 5, 9})
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("intersect: %v", got)
	}
	if intersect([]int{1}, []int{2}) != nil {
		t.Fatal("disjoint intersect not empty")
	}
}

func TestDecisionPathsCoverForest(t *testing.T) {
	X, y := interactionData(200, 5, 1)
	f, err := TrainForest(X, y, nil, ForestConfig{
		Trees: 10, Tree: TreeConfig{MaxDepth: 4, MinLeaf: 5, MTry: 3}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	paths := decisionPaths(f)
	if len(paths) == 0 {
		t.Fatal("no decision paths")
	}
	for _, p := range paths {
		for k := 1; k < len(p); k++ {
			if p[k] <= p[k-1] {
				t.Fatalf("path not sorted/unique: %v", p)
			}
		}
		for _, feat := range p {
			if feat < 0 || feat >= 5 {
				t.Fatalf("feature out of range: %v", p)
			}
		}
	}
}

func TestStableInteractionsFindPlantedPair(t *testing.T) {
	X, y := interactionData(400, 8, 3)
	cfg := IRFConfig{
		Forest:      ForestConfig{Trees: 40, Tree: TreeConfig{MaxDepth: 6, MinLeaf: 5, MTry: 3}, Seed: 4},
		Iterations:  3,
		WeightFloor: 0.05,
	}
	m, err := TrainIRF(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	interactions, err := StableInteractions(m.Final, DefaultRITConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(interactions) == 0 {
		t.Fatal("no interactions recovered")
	}
	// The planted pair {0,1} must be the most stable order-2+ interaction.
	best := interactions[0]
	if best.Key() != "0+1" {
		t.Fatalf("top interaction = %s (stability %.2f), want 0+1", best.Key(), best.Stability)
	}
	if best.Stability < 0.5 {
		t.Fatalf("planted interaction unstable: %.2f", best.Stability)
	}
}

func TestStableInteractionsValidation(t *testing.T) {
	X, y := interactionData(100, 4, 6)
	f, _ := TrainForest(X, y, nil, ForestConfig{
		Trees: 5, Tree: TreeConfig{MaxDepth: 3, MinLeaf: 5, MTry: 2}, Seed: 7})
	if _, err := StableInteractions(f, RITConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
	// A stump forest (no splits) has no paths.
	constY := make([]float64, 100)
	stump, _ := TrainForest(X, constY, nil, ForestConfig{
		Trees: 3, Tree: TreeConfig{MaxDepth: 1, MinLeaf: 1, MTry: 2}, Seed: 8})
	if _, err := StableInteractions(stump, DefaultRITConfig(9)); err == nil {
		t.Fatal("pathless forest accepted")
	}
}

func TestStableInteractionsDeterministic(t *testing.T) {
	X, y := interactionData(200, 6, 10)
	f, _ := TrainForest(X, y, nil, ForestConfig{
		Trees: 15, Tree: TreeConfig{MaxDepth: 5, MinLeaf: 5, MTry: 3}, Seed: 11})
	a, err := StableInteractions(f, DefaultRITConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := StableInteractions(f, DefaultRITConfig(12))
	if len(a) != len(b) {
		t.Fatal("RIT not deterministic")
	}
	for i := range a {
		if a[i].Key() != b[i].Key() || a[i].Stability != b[i].Stability {
			t.Fatal("RIT results differ across runs")
		}
	}
}
