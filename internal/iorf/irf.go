package iorf

import (
	"fmt"

	"fairflow/internal/expt"
)

// IRFConfig parameterises an iterative random forest.
type IRFConfig struct {
	// Forest configures each iteration's forest.
	Forest ForestConfig
	// Iterations is the number of re-weighted fits (≥1). Iteration 1 uses
	// uniform feature weights; iteration k+1 weights features by iteration
	// k's importance — the Basu et al. scheme that stabilises high-order
	// interactions.
	Iterations int
	// WeightFloor keeps every feature minimally drawable so early mistakes
	// are recoverable; expressed as a fraction of the uniform weight.
	WeightFloor float64
}

// DefaultIRFConfig returns the standard 3-iteration setup.
func DefaultIRFConfig(seed int64) IRFConfig {
	return IRFConfig{Forest: DefaultForestConfig(seed), Iterations: 3, WeightFloor: 0.05}
}

// IRFModel is a trained iterative random forest.
type IRFModel struct {
	// Final is the last iteration's forest, used for prediction.
	Final *Forest
	// Importance is the final iteration's normalised feature importance.
	Importance []float64
	// History records each iteration's importance vector (History[0] is the
	// uniform-weight fit), exposing the stabilisation trajectory.
	History [][]float64
	// OOBHistory records each iteration's out-of-bag MSE.
	OOBHistory []float64
}

// TrainIRF runs the iterative random forest: fit, reweight by importance,
// refit. Each iteration derives an independent seed so results do not depend
// on build parallelism.
func TrainIRF(X [][]float64, y []float64, cfg IRFConfig) (*IRFModel, error) {
	if cfg.Iterations < 1 {
		return nil, fmt.Errorf("iorf: iterations must be ≥1, got %d", cfg.Iterations)
	}
	if cfg.WeightFloor < 0 {
		cfg.WeightFloor = 0
	}
	m := &IRFModel{}
	var weights []float64 // nil = uniform for iteration 0
	for it := 0; it < cfg.Iterations; it++ {
		fcfg := cfg.Forest
		fcfg.Seed = expt.SplitSeed(cfg.Forest.Seed, it)
		forest, err := TrainForest(X, y, weights, fcfg)
		if err != nil {
			return nil, fmt.Errorf("iorf: iteration %d: %w", it, err)
		}
		m.Final = forest
		m.Importance = forest.Importance
		m.History = append(m.History, append([]float64(nil), forest.Importance...))
		m.OOBHistory = append(m.OOBHistory, forest.OOBError)

		if it < cfg.Iterations-1 {
			weights = nextWeights(forest.Importance, cfg.WeightFloor)
		}
	}
	return m, nil
}

// nextWeights converts an importance vector into sampling weights with a
// floor: w_f = imp_f + floor/n (so zero-importance features keep a small
// drawing probability).
func nextWeights(importance []float64, floor float64) []float64 {
	n := len(importance)
	if n == 0 {
		return nil
	}
	base := floor / float64(n)
	w := make([]float64, n)
	for i, v := range importance {
		w[i] = v + base
	}
	return w
}

// Predict applies the final forest.
func (m *IRFModel) Predict(x []float64) float64 {
	return m.Final.Predict(x)
}

// Concentration measures how concentrated an importance vector is (sum of
// squares, i.e. inverse effective feature count; higher = more
// concentrated). iRF iterations should not decrease it on signal-bearing
// data — the property tests use this.
func Concentration(importance []float64) float64 {
	var s float64
	for _, v := range importance {
		s += v * v
	}
	return s
}
