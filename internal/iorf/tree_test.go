package iorf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fairflow/internal/expt"
)

// stepData builds y = 1{x0 > 0} with distractor features.
func stepData(n, features int, seed int64) ([][]float64, []float64) {
	rng := expt.NewRNG(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, features)
		for f := range row {
			row[f] = rng.NormFloat64()
		}
		X[i] = row
		if row[0] > 0 {
			y[i] = 1
		}
	}
	return X, y
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func TestGrowTreeLearnsStepFunction(t *testing.T) {
	X, y := stepData(400, 5, 1)
	rng := expt.NewRNG(2)
	tree, err := growTree(X, y, allIdx(400), TreeConfig{MinLeaf: 2, MTry: 5}, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, row := range X {
		pred := tree.Predict(row)
		if (pred > 0.5) == (y[i] > 0.5) {
			correct++
		}
	}
	if frac := float64(correct) / 400; frac < 0.95 {
		t.Fatalf("training accuracy %.2f", frac)
	}
	// Importance should be dominated by feature 0.
	best := 0
	for f, v := range tree.importance {
		if v > tree.importance[best] {
			best = f
		}
	}
	if best != 0 {
		t.Fatalf("most important feature = %d", best)
	}
}

func TestGrowTreeRespectsMaxDepth(t *testing.T) {
	X, y := stepData(200, 3, 3)
	rng := expt.NewRNG(4)
	tree, err := growTree(X, y, allIdx(200), TreeConfig{MaxDepth: 2, MinLeaf: 1, MTry: 3}, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 2 {
		t.Fatalf("depth %d exceeds max 2", d)
	}
}

func TestGrowTreePureLeafStopsSplitting(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{5, 5, 5, 5}
	rng := expt.NewRNG(1)
	tree, err := growTree(X, y, allIdx(4), TreeConfig{MinLeaf: 1, MTry: 1}, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Nodes() != 1 {
		t.Fatalf("constant target grew %d nodes", tree.Nodes())
	}
	if tree.Predict([]float64{99}) != 5 {
		t.Fatal("wrong leaf value")
	}
}

func TestGrowTreeEmptyIndexErrors(t *testing.T) {
	rng := expt.NewRNG(1)
	if _, err := growTree([][]float64{{1}}, []float64{1}, nil, TreeConfig{}, nil, rng); err == nil {
		t.Fatal("empty index accepted")
	}
}

func TestBestSplitOnFeatureKnownCase(t *testing.T) {
	// x = 0,1,2,3; y = 0,0,10,10 → best threshold 1.5, gain = parent SSE.
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 0, 10, 10}
	gain, thr, ok := bestSplitOnFeature(X, y, allIdx(4), 0, 1)
	if !ok {
		t.Fatal("no split found")
	}
	if math.Abs(thr-1.5) > 1e-12 {
		t.Fatalf("threshold = %v", thr)
	}
	if math.Abs(gain-100) > 1e-9 { // parent SSE = 4*25 = 100, children 0
		t.Fatalf("gain = %v", gain)
	}
}

func TestBestSplitRespectsMinLeaf(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 5, 5, 5}
	// minLeaf=2 forbids the 1|3 split; the best allowed is 2|2.
	_, thr, ok := bestSplitOnFeature(X, y, allIdx(4), 0, 2)
	if !ok {
		t.Fatal("no split found")
	}
	if math.Abs(thr-1.5) > 1e-12 {
		t.Fatalf("threshold = %v violates minLeaf", thr)
	}
}

func TestBestSplitConstantFeature(t *testing.T) {
	X := [][]float64{{7}, {7}, {7}}
	y := []float64{1, 2, 3}
	if _, _, ok := bestSplitOnFeature(X, y, allIdx(3), 0, 1); ok {
		t.Fatal("split found on constant feature")
	}
}

func TestWeightedSampleDistinctAndComplete(t *testing.T) {
	f := func(nRaw, kRaw uint8, seed int64) bool {
		n := int(nRaw)%50 + 1
		k := int(kRaw)%n + 1
		rng := rand.New(rand.NewSource(seed))
		got := weightedSampleWithoutReplacement(n, k, nil, rng)
		if len(got) != k {
			return false
		}
		seen := map[int]bool{}
		for _, i := range got {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedSampleReturnsAllWhenKGEN(t *testing.T) {
	rng := expt.NewRNG(1)
	got := weightedSampleWithoutReplacement(5, 10, nil, rng)
	if len(got) != 5 {
		t.Fatalf("got %d indices", len(got))
	}
}

func TestWeightedSampleBiasFollowsWeights(t *testing.T) {
	rng := expt.NewRNG(9)
	w := []float64{100, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	hits := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		got := weightedSampleWithoutReplacement(10, 1, w, rng)
		if got[0] == 0 {
			hits++
		}
	}
	if frac := float64(hits) / trials; frac < 0.85 {
		t.Fatalf("heavy feature drawn %.2f of the time", frac)
	}
}

func TestWeightedSampleZeroWeightsDegradeToUniform(t *testing.T) {
	rng := expt.NewRNG(10)
	w := make([]float64, 6)
	counts := make([]int, 6)
	for i := 0; i < 3000; i++ {
		got := weightedSampleWithoutReplacement(6, 1, w, rng)
		counts[got[0]]++
	}
	for f, c := range counts {
		if c < 300 {
			t.Fatalf("feature %d drawn only %d/3000 times under all-zero weights", f, c)
		}
	}
}
