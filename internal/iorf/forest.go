package iorf

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"fairflow/internal/expt"
)

// ForestConfig parameterises one random forest.
type ForestConfig struct {
	// Trees is the ensemble size.
	Trees int
	// Tree bounds individual tree growth.
	Tree TreeConfig
	// Seed drives bootstrap and feature sampling; each tree derives an
	// independent stream, so forests are reproducible regardless of build
	// parallelism.
	Seed int64
	// Parallelism bounds concurrent tree builds (≤0 = GOMAXPROCS).
	Parallelism int
}

// DefaultForestConfig returns a reasonable configuration for n features.
func DefaultForestConfig(seed int64) ForestConfig {
	return ForestConfig{
		Trees: 100,
		Tree:  TreeConfig{MaxDepth: 0, MinLeaf: 3, MTry: 0},
		Seed:  seed,
	}
}

// Forest is a trained ensemble.
type Forest struct {
	Trees []*Tree
	// Importance is the per-feature impurity-decrease importance summed
	// over trees and normalised to sum to 1 (all-zero if no splits).
	Importance []float64
	// OOBError is the out-of-bag mean squared error.
	OOBError float64
}

// TrainForest fits a regression random forest of X (sample-major) against
// y, with per-feature sampling weights w (nil = uniform) — the hook iRF uses
// to bias later iterations toward previously important features.
func TrainForest(X [][]float64, y []float64, w []float64, cfg ForestConfig) (*Forest, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("iorf: X has %d rows, y has %d", len(X), len(y))
	}
	if len(X[0]) == 0 {
		return nil, fmt.Errorf("iorf: no features")
	}
	if cfg.Trees < 1 {
		return nil, fmt.Errorf("iorf: forest needs ≥1 tree")
	}
	nSamples := len(X)
	nFeatures := len(X[0])
	for i, row := range X {
		if len(row) != nFeatures {
			return nil, fmt.Errorf("iorf: row %d has %d features, want %d", i, len(row), nFeatures)
		}
	}

	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	f := &Forest{Trees: make([]*Tree, cfg.Trees)}
	// Per-sample OOB accumulators.
	oobSum := make([]float64, nSamples)
	oobCount := make([]int, nSamples)
	var mu sync.Mutex

	sem := make(chan struct{}, par)
	errCh := make(chan error, cfg.Trees)
	var wg sync.WaitGroup
	for ti := 0; ti < cfg.Trees; ti++ {
		ti := ti
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(expt.SplitSeed(cfg.Seed, ti)))
			idx := make([]int, nSamples)
			inBag := make([]bool, nSamples)
			for i := range idx {
				j := rng.Intn(nSamples)
				idx[i] = j
				inBag[j] = true
			}
			tree, err := growTree(X, y, idx, cfg.Tree, w, rng)
			if err != nil {
				errCh <- err
				return
			}
			f.Trees[ti] = tree
			mu.Lock()
			for s := 0; s < nSamples; s++ {
				if !inBag[s] {
					oobSum[s] += tree.Predict(X[s])
					oobCount[s]++
				}
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}

	// Aggregate importance.
	f.Importance = make([]float64, nFeatures)
	var total float64
	for _, t := range f.Trees {
		for fi, v := range t.importance {
			f.Importance[fi] += v
			total += v
		}
	}
	if total > 0 {
		for fi := range f.Importance {
			f.Importance[fi] /= total
		}
	}

	// OOB MSE over samples that were out of bag at least once.
	var sse float64
	n := 0
	for s := 0; s < nSamples; s++ {
		if oobCount[s] > 0 {
			pred := oobSum[s] / float64(oobCount[s])
			d := pred - y[s]
			sse += d * d
			n++
		}
	}
	if n > 0 {
		f.OOBError = sse / float64(n)
	}
	return f, nil
}

// Predict averages tree predictions for one sample.
func (f *Forest) Predict(x []float64) float64 {
	var sum float64
	for _, t := range f.Trees {
		sum += t.Predict(x)
	}
	return sum / float64(len(f.Trees))
}
