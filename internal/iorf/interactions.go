package iorf

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Interaction is a set of features that co-occur on decision paths more
// often than chance — the "predictive and stable high-order interactions"
// that iterative random forests exist to surface (Basu et al. 2018).
type Interaction struct {
	// Features are the member feature indices, ascending.
	Features []int
	// Stability is the fraction of bootstrap RIT repetitions in which the
	// interaction (or a superset) survived.
	Stability float64
}

// Key renders the interaction canonically ("3+17+42").
func (i Interaction) Key() string {
	parts := make([]string, len(i.Features))
	for k, f := range i.Features {
		parts[k] = fmt.Sprintf("%d", f)
	}
	return strings.Join(parts, "+")
}

// RITConfig parameterises random intersection trees over a trained forest.
type RITConfig struct {
	// Repetitions is the number of bootstrap RIT runs (stability
	// denominator).
	Repetitions int
	// Depth is the RIT depth: each intersection chain intersects this many
	// random decision paths.
	Depth int
	// Branches is the RIT branching factor per level.
	Branches int
	// MinOrder discards interactions with fewer features (1 = keep
	// singletons).
	MinOrder int
	// Seed drives path sampling.
	Seed int64
}

// DefaultRITConfig returns the standard setting.
func DefaultRITConfig(seed int64) RITConfig {
	return RITConfig{Repetitions: 30, Depth: 3, Branches: 2, MinOrder: 2, Seed: seed}
}

// decisionPaths extracts the feature set of every root-to-leaf path in the
// forest (each path contributes the set of features it splits on).
func decisionPaths(f *Forest) [][]int {
	var paths [][]int
	for _, tree := range f.Trees {
		if len(tree.nodes) == 0 {
			continue
		}
		var walk func(idx int, current map[int]bool)
		walk = func(idx int, current map[int]bool) {
			n := tree.nodes[idx]
			if n.feature < 0 {
				if len(current) > 0 {
					path := make([]int, 0, len(current))
					for f := range current {
						path = append(path, f)
					}
					sort.Ints(path)
					paths = append(paths, path)
				}
				return
			}
			added := !current[n.feature]
			current[n.feature] = true
			walk(n.left, current)
			walk(n.right, current)
			if added {
				delete(current, n.feature)
			}
		}
		walk(0, map[int]bool{})
	}
	return paths
}

// StableInteractions runs random intersection trees over the forest's
// decision paths: repeatedly intersect randomly drawn paths; feature sets
// that survive intersection are candidate interactions, and their stability
// is the fraction of repetitions in which they appear. Results are sorted
// by stability (descending), then order (descending), then key.
func StableInteractions(f *Forest, cfg RITConfig) ([]Interaction, error) {
	if cfg.Repetitions < 1 || cfg.Depth < 1 || cfg.Branches < 1 {
		return nil, fmt.Errorf("iorf: RIT needs ≥1 repetition, depth and branch")
	}
	if cfg.MinOrder < 1 {
		cfg.MinOrder = 1
	}
	paths := decisionPaths(f)
	if len(paths) == 0 {
		return nil, fmt.Errorf("iorf: forest has no split paths")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	counts := map[string]int{}
	members := map[string][]int{}
	for rep := 0; rep < cfg.Repetitions; rep++ {
		seen := map[string]bool{}
		// One RIT: start from a random path, intersect with Branches random
		// paths per level for Depth levels; record every nonempty survivor.
		var descend func(set []int, depth int)
		descend = func(set []int, depth int) {
			if len(set) == 0 {
				return
			}
			if len(set) >= cfg.MinOrder {
				key := Interaction{Features: set}.Key()
				if !seen[key] {
					seen[key] = true
					counts[key]++
					members[key] = set
				}
			}
			if depth == cfg.Depth {
				return
			}
			for b := 0; b < cfg.Branches; b++ {
				other := paths[rng.Intn(len(paths))]
				descend(intersect(set, other), depth+1)
			}
		}
		descend(paths[rng.Intn(len(paths))], 0)
	}

	out := make([]Interaction, 0, len(counts))
	for key, n := range counts {
		out = append(out, Interaction{
			Features:  members[key],
			Stability: float64(n) / float64(cfg.Repetitions),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stability != out[j].Stability {
			return out[i].Stability > out[j].Stability
		}
		if len(out[i].Features) != len(out[j].Features) {
			return len(out[i].Features) > len(out[j].Features)
		}
		return out[i].Key() < out[j].Key()
	})
	return out, nil
}

// intersect returns the sorted intersection of a sorted slice and a sorted
// slice.
func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
