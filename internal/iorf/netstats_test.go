package iorf

import (
	"math"
	"testing"
)

// twoClusterNetwork builds a hand-crafted network with two disjoint
// reciprocal pairs and one weak cross edge.
func twoClusterNetwork() *Network {
	return &Network{
		FeatureNames: []string{"a", "b", "c", "d"},
		Adjacency: [][]float64{
			{0, 0.9, 0.05, 0},
			{0.8, 0, 0, 0},
			{0, 0, 0, 0.7},
			{0, 0, 0.6, 0},
		},
	}
}

func TestNetworkStats(t *testing.T) {
	n := twoClusterNetwork()
	s := n.Stats(0.1)
	if s.Nodes != 4 {
		t.Fatalf("nodes = %d", s.Nodes)
	}
	if s.Edges != 4 { // the 0.05 edge is below threshold
		t.Fatalf("edges = %d", s.Edges)
	}
	if s.Reciprocity != 1 {
		t.Fatalf("reciprocity = %v", s.Reciprocity)
	}
	if math.Abs(s.Density-4.0/12.0) > 1e-12 {
		t.Fatalf("density = %v", s.Density)
	}
	// At zero threshold the weak edge appears and breaks full reciprocity.
	s0 := n.Stats(0)
	if s0.Edges != 5 || s0.Reciprocity != 4.0/5.0 {
		t.Fatalf("threshold-0 stats: %+v", s0)
	}
}

func TestNetworkStatsEmpty(t *testing.T) {
	n := &Network{}
	if s := n.Stats(0); s.Nodes != 0 || s.Edges != 0 {
		t.Fatalf("empty stats: %+v", s)
	}
}

func TestHubsRankByOutStrength(t *testing.T) {
	n := twoClusterNetwork()
	hubs := n.Hubs(2)
	if len(hubs) != 2 {
		t.Fatalf("hubs = %d", len(hubs))
	}
	// Column sums: a=0.8, b=0.9, c=0.65, d=0.7 → b then a.
	if hubs[0].From != "b" || hubs[1].From != "a" {
		t.Fatalf("hub order: %v, %v", hubs[0].From, hubs[1].From)
	}
	if math.Abs(hubs[0].Weight-0.9) > 1e-12 {
		t.Fatalf("hub strength: %v", hubs[0].Weight)
	}
	if got := n.Hubs(99); len(got) != 4 {
		t.Fatalf("oversized k: %d", len(got))
	}
}

func TestConnectedComponents(t *testing.T) {
	n := twoClusterNetwork()
	// Above the weak edge: two components of 2.
	comps := n.ConnectedComponents(0.1)
	if len(comps) != 2 || comps[0] != 2 || comps[1] != 2 {
		t.Fatalf("components: %v", comps)
	}
	// Including the weak edge: one component of 4.
	comps = n.ConnectedComponents(0.01)
	if len(comps) != 1 || comps[0] != 4 {
		t.Fatalf("components: %v", comps)
	}
	// Threshold above everything: four singletons.
	comps = n.ConnectedComponents(10)
	if len(comps) != 4 {
		t.Fatalf("components: %v", comps)
	}
}

func TestBlocksAppearAsComponents(t *testing.T) {
	// Integration: a real LOOP over chain data should link the chain
	// features into one component and leave distractors loosely attached.
	X, names := chainData(200, 2, 31)
	net, err := RunLOOP(X, names, loopConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	comps := n0(net.ConnectedComponents(0.3))
	// The chain trio (f0,f1,f2) must be in the same component at a strong
	// threshold.
	if comps < 1 {
		t.Fatalf("components: %d", comps)
	}
	s := net.Stats(0)
	if s.MeanOutStrength <= 0 {
		t.Fatal("no signal in network")
	}
}

func n0(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	return xs[0]
}
