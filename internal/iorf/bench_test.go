package iorf

import (
	"testing"

	"fairflow/internal/expt"
)

func benchData(n, features int) ([][]float64, []float64) {
	rng := expt.NewRNG(1)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, features)
		for f := range row {
			row[f] = rng.NormFloat64()
		}
		X[i] = row
		y[i] = 2*row[0] - row[1] + 0.3*rng.NormFloat64()
	}
	return X, y
}

func BenchmarkTrainForest(b *testing.B) {
	X, y := benchData(400, 16)
	cfg := ForestConfig{Trees: 30, Tree: TreeConfig{MaxDepth: 10, MinLeaf: 3, MTry: 4}, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainForest(X, y, nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainIRF3Iterations(b *testing.B) {
	X, y := benchData(300, 16)
	cfg := IRFConfig{
		Forest:      ForestConfig{Trees: 20, Tree: TreeConfig{MaxDepth: 8, MinLeaf: 3, MTry: 4}, Seed: 1},
		Iterations:  3,
		WeightFloor: 0.05,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainIRF(X, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestPredict(b *testing.B) {
	X, y := benchData(400, 16)
	f, err := TrainForest(X, y, nil, ForestConfig{
		Trees: 50, Tree: TreeConfig{MaxDepth: 10, MinLeaf: 3, MTry: 4}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(X[i%len(X)])
	}
}

func BenchmarkRunLOOPSmall(b *testing.B) {
	X, _ := benchData(150, 10)
	cfg := LoopConfig{
		IRF: IRFConfig{
			Forest:      ForestConfig{Trees: 10, Tree: TreeConfig{MaxDepth: 6, MinLeaf: 3, MTry: 3}, Seed: 1},
			Iterations:  2,
			WeightFloor: 0.05,
		},
		Parallelism: 4,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunLOOP(X, nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
