package iorf

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"fairflow/internal/expt"
)

// LoopConfig parameterises an iRF-LOOP run.
type LoopConfig struct {
	// IRF configures each per-feature model.
	IRF IRFConfig
	// Parallelism bounds concurrent per-feature fits (≤0 = GOMAXPROCS).
	Parallelism int
}

// Network is the iRF-LOOP output: a directed weighted adjacency over
// features. Adjacency[i][j] is the (normalised) importance of feature j in
// predicting feature i — an edge j → i in the predictive-expression-network
// reading.
type Network struct {
	FeatureNames []string
	Adjacency    [][]float64
	// RunSeconds records the wall time of each per-feature fit; its heavy
	// tail is the straggler phenomenon the paper's Fig. 6 baseline suffers
	// from.
	RunSeconds []float64
}

// Edge is one directed network edge.
type Edge struct {
	From, To string
	Weight   float64
}

// RunLOOP executes iterative random forest leave-one-out prediction over the
// sample-major matrix X: for each feature f, fit iRF with column f as the
// response and all other columns as predictors, then assemble the n×n
// importance matrix with row f holding feature f's predictors' importances
// (normalised to sum to 1; the diagonal is zero).
func RunLOOP(X [][]float64, names []string, cfg LoopConfig) (*Network, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("iorf: empty matrix")
	}
	n := len(X[0])
	if n < 2 {
		return nil, fmt.Errorf("iorf: LOOP needs ≥2 features, got %d", n)
	}
	if names != nil && len(names) != n {
		return nil, fmt.Errorf("iorf: %d names for %d features", len(names), n)
	}
	if names == nil {
		names = make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("f%04d", i)
		}
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	net := &Network{
		FeatureNames: names,
		Adjacency:    make([][]float64, n),
		RunSeconds:   make([]float64, n),
	}

	sem := make(chan struct{}, par)
	errCh := make(chan error, n)
	var wg sync.WaitGroup
	for f := 0; f < n; f++ {
		f := f
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			row, err := LoopFitFeature(X, f, cfg.IRF)
			net.RunSeconds[f] = time.Since(start).Seconds()
			if err != nil {
				errCh <- fmt.Errorf("iorf: feature %d (%s): %w", f, names[f], err)
				return
			}
			net.Adjacency[f] = row
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}
	return net, nil
}

// LoopFitFeature fits one leave-one-out model (response = column target) and
// returns the full-width importance row: n entries, zero at the target
// index, the rest normalised to sum to 1 (or all zero if the model found no
// structure). This is the single "parameter" unit the Cheetah campaign of
// Section V-D sweeps over — one iRF run per feature.
func LoopFitFeature(X [][]float64, target int, cfg IRFConfig) ([]float64, error) {
	nSamples := len(X)
	n := len(X[0])
	if target < 0 || target >= n {
		return nil, fmt.Errorf("iorf: target %d out of range", target)
	}
	// Assemble predictors (all columns but target) and response.
	Xp := make([][]float64, nSamples)
	y := make([]float64, nSamples)
	for s := 0; s < nSamples; s++ {
		row := make([]float64, 0, n-1)
		for f := 0; f < n; f++ {
			if f == target {
				continue
			}
			row = append(row, X[s][f])
		}
		Xp[s] = row
		y[s] = X[s][target]
	}
	icfg := cfg
	icfg.Forest.Seed = expt.SplitSeed(cfg.Forest.Seed, target)
	m, err := TrainIRF(Xp, y, icfg)
	if err != nil {
		return nil, err
	}
	// Re-expand to n entries with zero at the diagonal.
	row := make([]float64, n)
	j := 0
	var sum float64
	for f := 0; f < n; f++ {
		if f == target {
			continue
		}
		row[f] = m.Importance[j]
		sum += row[f]
		j++
	}
	if sum > 0 {
		for f := range row {
			row[f] /= sum
		}
	}
	return row, nil
}

// TopEdges returns the k strongest directed edges, descending by weight.
func (n *Network) TopEdges(k int) []Edge {
	var edges []Edge
	for i, row := range n.Adjacency {
		for j, w := range row {
			if w > 0 {
				edges = append(edges, Edge{From: n.FeatureNames[j], To: n.FeatureNames[i], Weight: w})
			}
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].Weight != edges[b].Weight {
			return edges[a].Weight > edges[b].Weight
		}
		if edges[a].From != edges[b].From {
			return edges[a].From < edges[b].From
		}
		return edges[a].To < edges[b].To
	})
	if k > len(edges) {
		k = len(edges)
	}
	return edges[:k]
}

// Threshold returns a copy of the adjacency with entries below min zeroed —
// the standard post-processing before interpreting the network.
func (n *Network) Threshold(min float64) [][]float64 {
	out := make([][]float64, len(n.Adjacency))
	for i, row := range n.Adjacency {
		out[i] = make([]float64, len(row))
		for j, w := range row {
			if w >= min {
				out[i][j] = w
			}
		}
	}
	return out
}
