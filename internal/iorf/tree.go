// Package iorf implements iterative random forests (iRF, Basu et al. 2018)
// and the iRF-LOOP all-to-all network construction (Cliff et al. 2019) the
// paper's Section II-B/V-D workflow runs at scale: regression CART trees
// with weighted feature sampling, bootstrap forests, iterative feature
// re-weighting, and the leave-one-out-prediction driver that turns an n×m
// feature matrix into an n×n directed importance network.
package iorf

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// TreeConfig bounds single-tree growth.
type TreeConfig struct {
	// MaxDepth limits tree depth (root = depth 0). ≤0 means unlimited.
	MaxDepth int
	// MinLeaf is the minimum samples in a leaf (≥1).
	MinLeaf int
	// MTry is the number of candidate features per split (≥1).
	MTry int
}

// node is one tree node; leaves have feature == -1.
type node struct {
	feature   int
	threshold float64
	left      int // child indices into Tree.nodes
	right     int
	value     float64 // leaf prediction (mean of y)
}

// Tree is a trained regression tree stored as a flat node array.
type Tree struct {
	nodes []node
	// importance[f] is the total weighted impurity decrease attributed to
	// feature f in this tree.
	importance []float64
}

// Predict returns the tree's prediction for one sample.
func (t *Tree) Predict(x []float64) float64 {
	i := 0
	for {
		n := t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Nodes reports the tree size (diagnostics and tests).
func (t *Tree) Nodes() int { return len(t.nodes) }

// Depth returns the maximum depth of the tree.
func (t *Tree) Depth() int {
	var walk func(i, d int) int
	walk = func(i, d int) int {
		n := t.nodes[i]
		if n.feature < 0 {
			return d
		}
		l := walk(n.left, d+1)
		r := walk(n.right, d+1)
		if l > r {
			return l
		}
		return r
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return walk(0, 0)
}

// growTree builds one regression tree on the sample indices idx of (X, y),
// choosing MTry candidate features per split by weighted sampling without
// replacement using weights w (nil = uniform).
func growTree(X [][]float64, y []float64, idx []int, cfg TreeConfig, w []float64, rng *rand.Rand) (*Tree, error) {
	if len(idx) == 0 {
		return nil, fmt.Errorf("iorf: empty training set")
	}
	nFeatures := len(X[0])
	if cfg.MTry < 1 || cfg.MTry > nFeatures {
		cfg.MTry = int(math.Sqrt(float64(nFeatures)))
		if cfg.MTry < 1 {
			cfg.MTry = 1
		}
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	t := &Tree{importance: make([]float64, nFeatures)}
	if err := t.split(X, y, idx, 0, cfg, w, rng); err != nil {
		return nil, err
	}
	return t, nil
}

// split recursively grows the subtree for idx at the given depth, appending
// nodes and returning via t.nodes. It writes the new node at the end of
// t.nodes and returns its index through the tree structure.
func (t *Tree) split(X [][]float64, y []float64, idx []int, depth int, cfg TreeConfig, w []float64, rng *rand.Rand) error {
	mean, sse := meanSSE(y, idx)
	self := len(t.nodes)
	t.nodes = append(t.nodes, node{feature: -1, value: mean})

	if len(idx) < 2*cfg.MinLeaf || sse <= 1e-12 || (cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) {
		return nil
	}

	candidates := weightedSampleWithoutReplacement(len(X[0]), cfg.MTry, w, rng)
	bestGain := 0.0
	bestFeature := -1
	bestThreshold := 0.0
	for _, f := range candidates {
		gain, thr, ok := bestSplitOnFeature(X, y, idx, f, cfg.MinLeaf)
		if ok && gain > bestGain {
			bestGain, bestFeature, bestThreshold = gain, f, thr
		}
	}
	if bestFeature < 0 {
		return nil
	}

	var left, right []int
	for _, i := range idx {
		if X[i][bestFeature] <= bestThreshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.MinLeaf || len(right) < cfg.MinLeaf {
		return nil
	}

	t.importance[bestFeature] += bestGain
	t.nodes[self].feature = bestFeature
	t.nodes[self].threshold = bestThreshold

	t.nodes[self].left = len(t.nodes)
	if err := t.split(X, y, left, depth+1, cfg, w, rng); err != nil {
		return err
	}
	t.nodes[self].right = len(t.nodes)
	return t.split(X, y, right, depth+1, cfg, w, rng)
}

// meanSSE computes the mean of y over idx and the sum of squared errors
// around it.
func meanSSE(y []float64, idx []int) (mean, sse float64) {
	for _, i := range idx {
		mean += y[i]
	}
	mean /= float64(len(idx))
	for _, i := range idx {
		d := y[i] - mean
		sse += d * d
	}
	return mean, sse
}

// bestSplitOnFeature scans all thresholds of feature f over idx and returns
// the best SSE reduction, the threshold achieving it, and whether any valid
// split exists.
func bestSplitOnFeature(X [][]float64, y []float64, idx []int, f, minLeaf int) (gain, threshold float64, ok bool) {
	n := len(idx)
	order := make([]int, n)
	copy(order, idx)
	sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })

	// Prefix sums of y and y² in sorted order enable O(1) SSE of both sides
	// at every split point.
	var totalSum, totalSq float64
	for _, i := range order {
		totalSum += y[i]
		totalSq += y[i] * y[i]
	}
	parentSSE := totalSq - totalSum*totalSum/float64(n)

	var leftSum, leftSq float64
	best := 0.0
	bestThr := 0.0
	found := false
	for k := 0; k < n-1; k++ {
		i := order[k]
		leftSum += y[i]
		leftSq += y[i] * y[i]
		// Can't split between equal feature values.
		if X[order[k]][f] == X[order[k+1]][f] {
			continue
		}
		nl := k + 1
		nr := n - nl
		if nl < minLeaf || nr < minLeaf {
			continue
		}
		rightSum := totalSum - leftSum
		rightSq := totalSq - leftSq
		leftSSE := leftSq - leftSum*leftSum/float64(nl)
		rightSSE := rightSq - rightSum*rightSum/float64(nr)
		g := parentSSE - leftSSE - rightSSE
		if g > best {
			best = g
			bestThr = (X[order[k]][f] + X[order[k+1]][f]) / 2
			found = true
		}
	}
	return best, bestThr, found
}

// weightedSampleWithoutReplacement draws k distinct indices from [0, n)
// with probability proportional to w (nil or all-zero = uniform), using the
// Efraimidis–Spirakis exponential-keys method.
func weightedSampleWithoutReplacement(n, k int, w []float64, rng *rand.Rand) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	type keyed struct {
		idx int
		key float64
	}
	keys := make([]keyed, n)
	for i := 0; i < n; i++ {
		wi := 1.0
		if w != nil && i < len(w) {
			wi = w[i]
		}
		if wi <= 0 {
			// Zero-weight features remain drawable with vanishing priority
			// (random tiebreak), so an all-zero weight vector degrades to
			// uniform sampling rather than a fixed prefix.
			wi = 1e-12
		}
		// Key = Exp(w): smaller is better; equivalent to u^(1/w) ordering.
		keys[i] = keyed{i, rng.ExpFloat64() / wi}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].key < keys[b].key })
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = keys[i].idx
	}
	return out
}
