package iorf

import (
	"math"
	"testing"

	"fairflow/internal/expt"
)

// linearData builds y = 3*x0 − 2*x1 + noise with distractors.
func linearData(n, features int, noise float64, seed int64) ([][]float64, []float64) {
	rng := expt.NewRNG(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, features)
		for f := range row {
			row[f] = rng.NormFloat64()
		}
		X[i] = row
		y[i] = 3*row[0] - 2*row[1] + rng.NormFloat64()*noise
	}
	return X, y
}

func smallForestConfig(seed int64) ForestConfig {
	return ForestConfig{
		Trees: 30,
		Tree:  TreeConfig{MaxDepth: 8, MinLeaf: 3, MTry: 3},
		Seed:  seed,
	}
}

func TestTrainForestValidation(t *testing.T) {
	X, y := linearData(50, 4, 0.1, 1)
	if _, err := TrainForest(nil, nil, nil, smallForestConfig(1)); err == nil {
		t.Fatal("empty X accepted")
	}
	if _, err := TrainForest(X, y[:10], nil, smallForestConfig(1)); err == nil {
		t.Fatal("mismatched y accepted")
	}
	cfg := smallForestConfig(1)
	cfg.Trees = 0
	if _, err := TrainForest(X, y, nil, cfg); err == nil {
		t.Fatal("zero trees accepted")
	}
	ragged := [][]float64{{1, 2}, {3}}
	if _, err := TrainForest(ragged, []float64{1, 2}, nil, smallForestConfig(1)); err == nil {
		t.Fatal("ragged X accepted")
	}
}

func TestForestLearnsAndRanksFeatures(t *testing.T) {
	X, y := linearData(400, 8, 0.2, 2)
	f, err := TrainForest(X, y, nil, smallForestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	// Importance sums to 1 and is dominated by features 0 and 1.
	var sum float64
	for _, v := range f.Importance {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importance sum = %v", sum)
	}
	if f.Importance[0]+f.Importance[1] < 0.6 {
		t.Fatalf("signal features importance = %v", f.Importance)
	}
	// Prediction should beat the trivial mean predictor by a wide margin.
	var varY float64
	meanY := expt.Mean(y)
	for _, v := range y {
		varY += (v - meanY) * (v - meanY)
	}
	varY /= float64(len(y))
	if f.OOBError > 0.6*varY {
		t.Fatalf("OOB MSE %.3f vs var(y) %.3f", f.OOBError, varY)
	}
}

func TestForestDeterministicAcrossParallelism(t *testing.T) {
	X, y := linearData(150, 5, 0.3, 4)
	cfgSerial := smallForestConfig(7)
	cfgSerial.Parallelism = 1
	cfgParallel := smallForestConfig(7)
	cfgParallel.Parallelism = 8
	a, err := TrainForest(X, y, nil, cfgSerial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainForest(X, y, nil, cfgParallel)
	if err != nil {
		t.Fatal(err)
	}
	for f := range a.Importance {
		if math.Abs(a.Importance[f]-b.Importance[f]) > 1e-12 {
			t.Fatalf("importance differs across parallelism at feature %d", f)
		}
	}
	probe := X[0]
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("predictions differ across parallelism")
	}
}

func TestForestDifferentSeedsDiffer(t *testing.T) {
	X, y := linearData(150, 5, 0.3, 4)
	a, _ := TrainForest(X, y, nil, smallForestConfig(1))
	b, _ := TrainForest(X, y, nil, smallForestConfig(2))
	same := true
	for f := range a.Importance {
		if a.Importance[f] != b.Importance[f] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical forests")
	}
}

func TestForestWeightsSteerFeatureChoice(t *testing.T) {
	// Two equally predictive duplicate features; weights should steer splits
	// toward the heavily weighted one.
	rng := expt.NewRNG(5)
	n := 300
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		v := rng.NormFloat64()
		X[i] = []float64{v, v, rng.NormFloat64()}
		y[i] = v
	}
	cfg := smallForestConfig(6)
	cfg.Tree.MTry = 1 // force the sampler to decide which feature is seen
	w := []float64{100, 0.01, 0.01}
	f, err := TrainForest(X, y, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Importance[0] < 5*f.Importance[1] {
		t.Fatalf("weights ignored: %v", f.Importance)
	}
}

func TestIRFIterationsConcentrateImportance(t *testing.T) {
	X, y := linearData(300, 12, 0.3, 8)
	cfg := IRFConfig{Forest: smallForestConfig(9), Iterations: 3, WeightFloor: 0.05}
	m, err := TrainIRF(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.History) != 3 || len(m.OOBHistory) != 3 {
		t.Fatalf("history lengths: %d, %d", len(m.History), len(m.OOBHistory))
	}
	first := Concentration(m.History[0])
	last := Concentration(m.History[2])
	if last < first {
		t.Fatalf("iterations diluted importance: %.4f → %.4f", first, last)
	}
	// The two causal features should top the final ranking.
	top := 0
	second := 1
	for f, v := range m.Importance {
		if v > m.Importance[top] {
			second = top
			top = f
		} else if f != top && v > m.Importance[second] {
			second = f
		}
	}
	if !(top == 0 && second == 1 || top == 1 && second == 0) {
		t.Fatalf("final top-2 features = %d, %d; importance %v", top, second, m.Importance)
	}
}

func TestIRFValidation(t *testing.T) {
	X, y := linearData(50, 4, 0.1, 1)
	cfg := IRFConfig{Forest: smallForestConfig(1), Iterations: 0}
	if _, err := TrainIRF(X, y, cfg); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestNextWeightsFloor(t *testing.T) {
	w := nextWeights([]float64{0.9, 0.1, 0}, 0.3)
	if w[2] <= 0 {
		t.Fatal("floor did not keep zero-importance feature drawable")
	}
	if w[0] < w[1] || w[1] < w[2] {
		t.Fatalf("weights not ordered by importance: %v", w)
	}
	if nextWeights(nil, 0.3) != nil {
		t.Fatal("nil importance should give nil weights")
	}
}
