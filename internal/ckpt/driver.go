package ckpt

import (
	"fmt"

	"fairflow/internal/hpcsim"
	"fairflow/internal/simapp"
)

// RunStats is the outcome of one simulated application run under a
// checkpoint policy — the quantities the paper's Figures 3 and 4 report.
type RunStats struct {
	Policy string
	// CheckpointsWritten is the number of checkpoints that reached storage
	// (paper Fig. 3/4 y-axis; max = Steps).
	CheckpointsWritten int
	// StepsCompleted is how many timesteps ran before walltime.
	StepsCompleted int
	// ComputeSeconds, CheckpointSeconds partition the wall time.
	ComputeSeconds    float64
	CheckpointSeconds float64
	// TotalSeconds is total wall time of the run.
	TotalSeconds float64
	// CheckpointSteps lists the step indices after which a checkpoint was
	// written.
	CheckpointSteps []int
	// Expired marks a run cut off by the allocation walltime.
	Expired bool
}

// OverheadFraction is checkpoint I/O time over total runtime.
func (r RunStats) OverheadFraction() float64 {
	if r.TotalSeconds <= 0 {
		return 0
	}
	return r.CheckpointSeconds / r.TotalSeconds
}

// RunConfig drives one simulated run.
type RunConfig struct {
	// Profile is the application shape (steps, nodes, payload, compute
	// noise).
	Profile simapp.Profile
	// Policy decides checkpoint writes.
	Policy Policy
	// Walltime is the batch job limit in seconds.
	Walltime float64
}

// RunOnCluster executes the profiled application as a batch job on the
// simulated cluster: for each timestep, a compute phase (all nodes busy),
// then a policy decision, then — if the policy fires — a blocking checkpoint
// write striped over all the job's nodes through the shared filesystem.
// The filesystem's wandering external load is what makes checkpoint cost,
// and therefore the overhead-budget policy's behaviour, vary between runs.
func RunOnCluster(cluster *hpcsim.Cluster, cfg RunConfig) (*RunStats, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("ckpt: nil policy")
	}
	stepTimes, err := cfg.Profile.StepTimes()
	if err != nil {
		return nil, err
	}
	if cfg.Walltime <= 0 {
		// Generous default: 4× the expected pure-compute time.
		total := 0.0
		for _, t := range stepTimes {
			total += t
		}
		cfg.Walltime = 4 * total
	}

	stats := &RunStats{Policy: cfg.Policy.Name()}
	fa, faOK := cfg.Policy.(*FailureAware)

	finished := false
	completed := false
	_, err = cluster.Submit(hpcsim.JobSpec{
		Name:     "gray-scott",
		Nodes:    cfg.Profile.Nodes,
		Walltime: cfg.Walltime,
		OnStart: func(a *hpcsim.Allocation) {
			sim := cluster.Sim()
			start := sim.Now()
			var lastCkptEnd = start
			var lastWrite float64

			var runStep func(step int)
			finish := func() {
				if finished {
					return
				}
				finished = true
				completed = true
				stats.TotalSeconds = sim.Now() - start
				a.Release()
			}
			runStep = func(step int) {
				if finished {
					return
				}
				if step >= len(stepTimes) {
					finish()
					return
				}
				compute := stepTimes[step]
				if a.Remaining() <= compute {
					stats.Expired = true
					finish()
					return
				}
				sim.After(compute, func() {
					if finished {
						return
					}
					stats.StepsCompleted++
					stats.ComputeSeconds += compute
					st := State{
						Step:               step + 1,
						TotalSteps:         len(stepTimes),
						Elapsed:            sim.Now() - start,
						CheckpointTime:     stats.CheckpointSeconds,
						LastCheckpointStep: lastStep(stats.CheckpointSteps),
						SinceCheckpoint:    sim.Now() - lastCkptEnd,
						LastWriteSeconds:   lastWrite,
					}
					if cfg.Policy.ShouldCheckpoint(st) {
						a.WriteFS(len(a.Nodes()), cfg.Profile.BytesPerCheckpoint, func(elapsed float64) {
							if finished {
								return
							}
							stats.CheckpointSeconds += elapsed
							stats.CheckpointsWritten++
							stats.CheckpointSteps = append(stats.CheckpointSteps, step+1)
							lastWrite = elapsed
							lastCkptEnd = sim.Now()
							if faOK {
								fa.Observe(elapsed)
							}
							runStep(step + 1)
						})
					} else {
						runStep(step + 1)
					}
				})
			}
			runStep(0)
		},
		OnEnd: func(j *hpcsim.Job) {
			if j.State == hpcsim.JobExpired && !finished {
				finished = true
				completed = true
				stats.Expired = true
				stats.TotalSeconds = j.Ended - j.Started
			}
		},
	})
	if err != nil {
		return nil, err
	}

	cluster.Sim().Run()
	if !completed {
		return nil, fmt.Errorf("ckpt: run never completed (job stuck in queue?)")
	}
	return stats, nil
}

func lastStep(steps []int) int {
	if len(steps) == 0 {
		return 0
	}
	return steps[len(steps)-1]
}
