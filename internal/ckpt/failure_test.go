package ckpt

import (
	"testing"

	"fairflow/internal/hpcsim"
)

func TestRunWithFailuresNoFailuresMatchesBaseline(t *testing.T) {
	// MTTF disabled: the failure driver must behave like the plain driver.
	mk := func() *hpcsim.Cluster {
		sim := hpcsim.New(21)
		return hpcsim.NewCluster(sim, hpcsim.ClusterConfig{Nodes: 8, FS: testFS()}, 22)
	}
	plain, err := RunOnCluster(mk(), RunConfig{Profile: fastProfile(22), Policy: FixedInterval{Every: 5}})
	if err != nil {
		t.Fatal(err)
	}
	ft, err := RunWithFailures(mk(), FailureRunConfig{
		RunConfig: RunConfig{Profile: fastProfile(22), Policy: FixedInterval{Every: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ft.Failures != 0 || ft.LostStepWork != 0 {
		t.Fatalf("phantom failures: %+v", ft)
	}
	if ft.CheckpointsWritten != plain.CheckpointsWritten || ft.StepsCompleted != plain.StepsCompleted {
		t.Fatalf("failure-free run diverged: %d/%d vs %d/%d",
			ft.CheckpointsWritten, ft.StepsCompleted, plain.CheckpointsWritten, plain.StepsCompleted)
	}
}

func TestRunWithFailuresRecovers(t *testing.T) {
	sim := hpcsim.New(5)
	cluster := hpcsim.NewCluster(sim, hpcsim.ClusterConfig{Nodes: 8, FS: testFS()}, 6)
	stats, err := RunWithFailures(cluster, FailureRunConfig{
		RunConfig:      RunConfig{Profile: fastProfile(7), Policy: FixedInterval{Every: 2}},
		MTTF:           200, // several failures over a ~700s run
		RestartLatency: 30,
		FailureSeed:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failures == 0 {
		t.Fatal("no failures injected with MTTF=200")
	}
	if stats.Expired {
		t.Fatal("run expired despite generous walltime")
	}
	// All 20 logical steps completed despite failures.
	if got := lastStep(stats.CheckpointSteps); got != 20 {
		t.Fatalf("final checkpoint at step %d", got)
	}
	if stats.RestartSeconds != float64(stats.Failures)*30 {
		t.Fatalf("restart accounting: %v for %d failures", stats.RestartSeconds, stats.Failures)
	}
	// Recomputed steps count toward StepsCompleted, so it exceeds 20.
	if stats.StepsCompleted < 20 {
		t.Fatalf("steps completed = %d", stats.StepsCompleted)
	}
}

func TestRunWithFailuresLostWorkBoundedByCheckpointSpacing(t *testing.T) {
	sim := hpcsim.New(9)
	cluster := hpcsim.NewCluster(sim, hpcsim.ClusterConfig{Nodes: 8, FS: testFS()}, 10)
	stats, err := RunWithFailures(cluster, FailureRunConfig{
		RunConfig:      RunConfig{Profile: fastProfile(11), Policy: FixedInterval{Every: 2}},
		MTTF:           300,
		RestartLatency: 10,
		FailureSeed:    12,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With checkpoints every 2 steps, each failure loses at most 2 steps
	// (the current in-flight step plus at most one unsaved completed step).
	if stats.Failures > 0 && stats.LostStepWork > 2*stats.Failures {
		t.Fatalf("lost %d steps over %d failures with every-2 checkpoints",
			stats.LostStepWork, stats.Failures)
	}
}

func TestCompareUnderFailuresTradeoff(t *testing.T) {
	scfg := SweepConfig{ClusterNodes: 8, FS: testFS(), Profile: fastProfile(0), Seed: 31}
	policies := []Policy{
		FixedInterval{Every: 19},          // almost never checkpoints
		FixedInterval{Every: 2},           // checkpoints constantly
		OverheadBudget{MaxOverhead: 0.15}, // adaptive
	}
	outs, err := CompareUnderFailures(scfg, policies, 400, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	rare, frequent, adaptive := outs[0], outs[1], outs[2]
	// The rare-checkpoint policy must lose far more work per failure.
	if rare.MeanFailures > 0 && frequent.MeanFailures > 0 {
		rareLossRate := rare.MeanLostSteps / rare.MeanFailures
		freqLossRate := frequent.MeanLostSteps / frequent.MeanFailures
		if rareLossRate <= freqLossRate {
			t.Fatalf("loss per failure: rare %.1f ≤ frequent %.1f", rareLossRate, freqLossRate)
		}
	}
	// The adaptive policy writes more checkpoints than the rare baseline.
	if adaptive.MeanCkpts <= rare.MeanCkpts {
		t.Fatalf("adaptive wrote %.1f ckpts vs rare %.1f", adaptive.MeanCkpts, rare.MeanCkpts)
	}
	for _, o := range outs {
		if o.ExpiredRuns > 0 {
			t.Fatalf("%s expired in %d runs", o.Policy, o.ExpiredRuns)
		}
	}
}
