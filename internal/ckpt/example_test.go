package ckpt_test

import (
	"fmt"

	"fairflow/internal/ckpt"
)

// Example composes checkpoint policies the way the paper's Section V-B
// describes: an I/O overhead budget with a minimum-frequency floor.
func Example() {
	policy := ckpt.AnyOf{Policies: []ckpt.Policy{
		ckpt.OverheadBudget{MaxOverhead: 0.10},
		ckpt.MinGap{Gap: 900},
	}}
	fmt.Println(policy.Name())

	// Within budget → write.
	st := ckpt.State{Elapsed: 1000, CheckpointTime: 40, LastWriteSeconds: 40, SinceCheckpoint: 100}
	fmt.Println("within budget:", policy.ShouldCheckpoint(st))

	// Over budget but 15+ minutes since the last checkpoint → the floor
	// forces a write anyway.
	st = ckpt.State{Elapsed: 1000, CheckpointTime: 300, LastWriteSeconds: 100, SinceCheckpoint: 901}
	fmt.Println("floor fires:", policy.ShouldCheckpoint(st))
	// Output:
	// any-of(overhead-budget(10%), min-gap(900s))
	// within budget: true
	// floor fires: true
}
