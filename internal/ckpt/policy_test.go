package ckpt

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFixedInterval(t *testing.T) {
	p := FixedInterval{Every: 5}
	var fired []int
	for step := 1; step <= 20; step++ {
		if p.ShouldCheckpoint(State{Step: step}) {
			fired = append(fired, step)
		}
	}
	want := []int{5, 10, 15, 20}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v", fired)
		}
	}
	if (FixedInterval{Every: 0}).ShouldCheckpoint(State{Step: 5}) {
		t.Fatal("disabled interval fired")
	}
}

func TestOverheadBudgetFirstWriteAlwaysAllowed(t *testing.T) {
	p := OverheadBudget{MaxOverhead: 0.01}
	if !p.ShouldCheckpoint(State{Step: 1, Elapsed: 100, LastWriteSeconds: 0}) {
		t.Fatal("first write denied")
	}
}

func TestOverheadBudgetRespectsBudget(t *testing.T) {
	p := OverheadBudget{MaxOverhead: 0.10}
	// Elapsed 1000s, spent 50s on ckpt, next write ~50s: projected
	// (50+50)/(1000+50) ≈ 9.5% → allowed.
	ok := p.ShouldCheckpoint(State{Elapsed: 1000, CheckpointTime: 50, LastWriteSeconds: 50})
	if !ok {
		t.Fatal("write within budget denied")
	}
	// Spent 100s already: projected (100+50)/(1000+50) ≈ 14% → denied.
	if p.ShouldCheckpoint(State{Elapsed: 1000, CheckpointTime: 100, LastWriteSeconds: 50}) {
		t.Fatal("write over budget allowed")
	}
}

func TestOverheadBudgetZeroDisabled(t *testing.T) {
	if (OverheadBudget{}).ShouldCheckpoint(State{Elapsed: 100}) {
		t.Fatal("zero budget fired")
	}
}

func TestOverheadBudgetMonotoneInBudget(t *testing.T) {
	// Property: if a state passes at budget b, it passes at any b' ≥ b.
	f := func(elRaw, ckRaw, lwRaw uint16, bRaw, bRaw2 uint8) bool {
		st := State{
			Elapsed:          float64(elRaw) + 1,
			CheckpointTime:   float64(ckRaw),
			LastWriteSeconds: float64(lwRaw) + 1,
		}
		b1 := float64(bRaw%100+1) / 100
		b2 := b1 + float64(bRaw2%100)/100
		p1 := OverheadBudget{MaxOverhead: b1}
		p2 := OverheadBudget{MaxOverhead: b2}
		if p1.ShouldCheckpoint(st) && !p2.ShouldCheckpoint(st) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMinGap(t *testing.T) {
	p := MinGap{Gap: 300}
	if p.ShouldCheckpoint(State{SinceCheckpoint: 200}) {
		t.Fatal("fired early")
	}
	if !p.ShouldCheckpoint(State{SinceCheckpoint: 301}) {
		t.Fatal("did not fire after gap")
	}
	if (MinGap{}).ShouldCheckpoint(State{SinceCheckpoint: 1e9}) {
		t.Fatal("disabled gap fired")
	}
}

func TestFailureAwareSpikesTrigger(t *testing.T) {
	p := &FailureAware{SpikeFactor: 3}
	// Not enough observations yet.
	if p.ShouldCheckpoint(State{LastWriteSeconds: 100}) {
		t.Fatal("fired without baseline")
	}
	p.Observe(10)
	p.Observe(12)
	if p.ShouldCheckpoint(State{LastWriteSeconds: 20}) {
		t.Fatal("fired on a normal write")
	}
	if !p.ShouldCheckpoint(State{LastWriteSeconds: 100}) {
		t.Fatal("did not fire on a 10× spike")
	}
}

func TestAnyOfAllOfComposition(t *testing.T) {
	fire := FixedInterval{Every: 1}  // always fires
	never := FixedInterval{Every: 0} // never fires
	st := State{Step: 3}
	if !(AnyOf{Policies: []Policy{never, fire}}).ShouldCheckpoint(st) {
		t.Fatal("AnyOf missed a firing member")
	}
	if (AnyOf{Policies: []Policy{never, never}}).ShouldCheckpoint(st) {
		t.Fatal("AnyOf fired with no firing member")
	}
	if (AllOf{Policies: []Policy{fire, never}}).ShouldCheckpoint(st) {
		t.Fatal("AllOf fired despite a dissenter")
	}
	if !(AllOf{Policies: []Policy{fire, fire}}).ShouldCheckpoint(st) {
		t.Fatal("AllOf missed unanimous firing")
	}
	if (AllOf{}).ShouldCheckpoint(st) {
		t.Fatal("empty AllOf fired")
	}
}

func TestPolicyNames(t *testing.T) {
	names := []string{
		FixedInterval{Every: 5}.Name(),
		OverheadBudget{MaxOverhead: 0.1}.Name(),
		MinGap{Gap: 60}.Name(),
		(&FailureAware{SpikeFactor: 3}).Name(),
		AnyOf{Policies: []Policy{FixedInterval{Every: 2}, MinGap{Gap: 1}}}.Name(),
		AllOf{Policies: []Policy{FixedInterval{Every: 2}}}.Name(),
	}
	for _, n := range names {
		if n == "" {
			t.Fatal("empty policy name")
		}
	}
	if !strings.Contains(names[1], "10%") {
		t.Fatalf("budget name: %s", names[1])
	}
	if !strings.Contains(names[4], ", ") {
		t.Fatalf("composite name: %s", names[4])
	}
}

func TestStateOverhead(t *testing.T) {
	if (State{}).Overhead() != 0 {
		t.Fatal("zero elapsed should give zero overhead")
	}
	s := State{Elapsed: 200, CheckpointTime: 50}
	if s.Overhead() != 0.25 {
		t.Fatalf("overhead = %v", s.Overhead())
	}
}
