package ckpt

import (
	"testing"
	"time"

	"fairflow/internal/simapp"
)

// gsApp adapts the Gray–Scott solver to the App interface.
type gsApp struct{ g *simapp.GrayScott }

func (a gsApp) Step() { a.g.Step() }
func (a gsApp) Snapshot() (any, error) {
	return a.g.Snapshot(), nil
}
func (a gsApp) Restore(s any) error { return a.g.Restore(s.(simapp.Snapshot)) }

func newGS(t *testing.T) *simapp.GrayScott {
	t.Helper()
	g, err := simapp.NewGrayScott(simapp.DefaultGrayScott(32, 5))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// fakeClock advances a fixed amount per call, making real-runner timing
// deterministic.
func fakeClock(stepMS int) Clock {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(time.Duration(stepMS) * time.Millisecond)
		return t
	}
}

func TestRealRunnerFixedInterval(t *testing.T) {
	g := newGS(t)
	r := &RealRunner{App: gsApp{g}, Policy: FixedInterval{Every: 4}, Keep: 2, Now: fakeClock(10)}
	stats, retained, err := r.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StepsCompleted != 12 || g.StepCount() != 12 {
		t.Fatalf("steps: %d / %d", stats.StepsCompleted, g.StepCount())
	}
	if stats.CheckpointsWritten != 3 {
		t.Fatalf("checkpoints: %d", stats.CheckpointsWritten)
	}
	if len(retained) != 2 || retained[1].Step != 12 || retained[0].Step != 8 {
		t.Fatalf("retained: %+v", retained)
	}
	if stats.ComputeSeconds <= 0 || stats.CheckpointSeconds <= 0 {
		t.Fatalf("timing: %+v", stats)
	}
}

func TestRealRunnerRestartEquivalence(t *testing.T) {
	g := newGS(t)
	r := &RealRunner{App: gsApp{g}, Policy: FixedInterval{Every: 5}, Keep: 1}
	_, retained, err := r.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	// Continue to step 15, remember the state.
	for i := 0; i < 5; i++ {
		g.Step()
	}
	want := g.Checksum()

	// Rewind to the step-10 checkpoint and recompute.
	step, err := r.RestoreLatest(retained)
	if err != nil || step != 10 {
		t.Fatalf("restored to %d, %v", step, err)
	}
	if g.StepCount() != 10 {
		t.Fatalf("app at step %d after restore", g.StepCount())
	}
	for i := 0; i < 5; i++ {
		g.Step()
	}
	if g.Checksum() != want {
		t.Fatal("restart diverged from the original trajectory")
	}
}

func TestRealRunnerBudgetPolicyOnRealTimings(t *testing.T) {
	run := func(budget float64) int {
		g := newGS(t)
		r := &RealRunner{App: gsApp{g}, Policy: OverheadBudget{MaxOverhead: budget}, Now: fakeClock(10)}
		stats, _, err := r.Run(40)
		if err != nil {
			t.Fatal(err)
		}
		return stats.CheckpointsWritten
	}
	tight, loose := run(0.02), run(0.50)
	if tight == 0 {
		t.Fatal("tight budget never wrote")
	}
	if tight >= loose {
		t.Fatalf("budget not monotone on real timings: %d @2%% vs %d @50%%", tight, loose)
	}
	if loose < 35 {
		t.Fatalf("50%% budget wrote only %d of 40", loose)
	}
}

func TestRealRunnerValidation(t *testing.T) {
	if _, _, err := (&RealRunner{}).Run(5); err == nil {
		t.Fatal("unconfigured runner accepted")
	}
	g := newGS(t)
	if _, _, err := (&RealRunner{App: gsApp{g}, Policy: FixedInterval{Every: 1}}).Run(0); err == nil {
		t.Fatal("zero steps accepted")
	}
}

func TestRestoreLatestEmpty(t *testing.T) {
	g := newGS(t)
	r := &RealRunner{App: gsApp{g}, Policy: FixedInterval{Every: 1}}
	step, err := r.RestoreLatest(nil)
	if err != nil || step != 0 {
		t.Fatalf("empty restore: %d, %v", step, err)
	}
}
