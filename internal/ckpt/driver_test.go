package ckpt

import (
	"testing"

	"fairflow/internal/hpcsim"
	"fairflow/internal/simapp"
)

// fastProfile is a small, quick-to-simulate application.
func fastProfile(seed int64) simapp.Profile {
	return simapp.Profile{
		Steps:              20,
		Nodes:              8,
		RanksPerNode:       4,
		BytesPerCheckpoint: 1e11, // 100 GB
		MeanStepSeconds:    30,
		StepJitter:         0.2,
		ComputeScale:       1,
		Seed:               seed,
	}
}

// testFS is a congested filesystem scaled to the fast profile: a 100 GB
// checkpoint from 8 nodes costs on the order of 10 s against 30 s compute
// steps, so budget policies have real decisions to make.
func testFS() hpcsim.FSConfig {
	return hpcsim.FSConfig{
		AggregateBW:        2e10, // 20 GB/s nominal
		PerNodeBW:          1e10,
		LoadUpdateInterval: 10,
		LoadMean:           1.0,
		LoadPersistence:    0.8,
		LoadJitter:         0.4,
		BurstProb:          0.05,
	}
}

func newTestCluster(seed int64) *hpcsim.Cluster {
	sim := hpcsim.New(seed)
	return hpcsim.NewCluster(sim, hpcsim.ClusterConfig{Nodes: 8, FS: testFS()}, seed+1)
}

func TestRunOnClusterFixedInterval(t *testing.T) {
	stats, err := RunOnCluster(newTestCluster(1), RunConfig{
		Profile: fastProfile(2),
		Policy:  FixedInterval{Every: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.StepsCompleted != 20 {
		t.Fatalf("steps = %d", stats.StepsCompleted)
	}
	if stats.CheckpointsWritten != 4 {
		t.Fatalf("checkpoints = %d, want 4 (every 5 of 20)", stats.CheckpointsWritten)
	}
	for i, s := range stats.CheckpointSteps {
		if s != (i+1)*5 {
			t.Fatalf("checkpoint steps: %v", stats.CheckpointSteps)
		}
	}
	if stats.Expired {
		t.Fatal("run expired unexpectedly")
	}
	if stats.TotalSeconds <= stats.ComputeSeconds {
		t.Fatal("total time should include checkpoint I/O")
	}
}

func TestRunOnClusterNilPolicy(t *testing.T) {
	if _, err := RunOnCluster(newTestCluster(1), RunConfig{Profile: fastProfile(1)}); err == nil {
		t.Fatal("nil policy accepted")
	}
}

func TestRunOnClusterWalltimeExpiry(t *testing.T) {
	stats, err := RunOnCluster(newTestCluster(3), RunConfig{
		Profile:  fastProfile(4),
		Policy:   FixedInterval{Every: 100},
		Walltime: 100, // ~3 steps of 30 s
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Expired {
		t.Fatal("run should have expired")
	}
	if stats.StepsCompleted >= 20 {
		t.Fatalf("completed %d steps within 100 s walltime", stats.StepsCompleted)
	}
}

func TestOverheadBudgetPolicyHonoursBudgetInSimulation(t *testing.T) {
	stats, err := RunOnCluster(newTestCluster(5), RunConfig{
		Profile: fastProfile(6),
		Policy:  OverheadBudget{MaxOverhead: 0.10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CheckpointsWritten == 0 {
		t.Fatal("budget policy never wrote")
	}
	// Realised overhead should be near the budget; allow the one-write
	// exploration overshoot.
	if got := stats.OverheadFraction(); got > 0.20 {
		t.Fatalf("overhead %v far above 10%% budget", got)
	}
}

func TestBudgetSweepMonotone(t *testing.T) {
	cfg := SweepConfig{
		Budgets:       []float64{0.02, 0.10, 0.50},
		RunsPerBudget: 3,
		ClusterNodes:  8,
		FS:            testFS(),
		Profile:       fastProfile(0),
		Seed:          11,
	}
	pts, err := OverheadSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Paper Fig. 3: checkpoints written increase with permitted overhead.
	if !(pts[0].MeanCheckpoints < pts[1].MeanCheckpoints && pts[1].MeanCheckpoints < pts[2].MeanCheckpoints) {
		t.Fatalf("not monotone: %v %v %v", pts[0].MeanCheckpoints, pts[1].MeanCheckpoints, pts[2].MeanCheckpoints)
	}
	// At a huge budget the policy approaches one checkpoint per step.
	if pts[2].MeanCheckpoints < 15 {
		t.Fatalf("50%% budget wrote only %v of 20", pts[2].MeanCheckpoints)
	}
}

func TestRunVariationSpreads(t *testing.T) {
	cfg := SweepConfig{
		ClusterNodes: 8,
		FS:           testFS(),
		Profile:      fastProfile(0),
		Seed:         13,
	}
	runs, err := RunVariation(cfg, 0.10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 8 {
		t.Fatalf("runs = %d", len(runs))
	}
	min, max := runs[0].CheckpointsWritten, runs[0].CheckpointsWritten
	for _, r := range runs {
		if r.CheckpointsWritten < min {
			min = r.CheckpointsWritten
		}
		if r.CheckpointsWritten > max {
			max = r.CheckpointsWritten
		}
	}
	// Paper Fig. 4: run-to-run variation in checkpoint count at a fixed
	// budget, driven by system and application variability.
	if min == max {
		t.Fatal("no run-to-run variation at fixed budget")
	}
}

func TestComparePoliciesAblation(t *testing.T) {
	cfg := SweepConfig{ClusterNodes: 8, FS: testFS(), Profile: fastProfile(0), Seed: 17}
	cmp, err := ComparePolicies(cfg, 2, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	// The fixed policy blindly writes every 2 steps (10 writes of 20 steps)
	// regardless of cost; the budget policy adapts.
	if cmp.Fixed.CheckpointsWritten != 10 {
		t.Fatalf("fixed wrote %d", cmp.Fixed.CheckpointsWritten)
	}
	if cmp.Budget.OverheadFraction() > cmp.Fixed.OverheadFraction() && cmp.Budget.OverheadFraction() > 0.2 {
		t.Fatalf("budget policy overhead %.3f worse than fixed %.3f",
			cmp.Budget.OverheadFraction(), cmp.Fixed.OverheadFraction())
	}
}

func TestRecoveryPoint(t *testing.T) {
	stats := RunStats{CheckpointSteps: []int{5, 10, 15}}
	cases := map[int]int{3: 0, 5: 5, 12: 10, 99: 15}
	for fail, want := range cases {
		if got := RecoveryPoint(stats, fail); got != want {
			t.Fatalf("RecoveryPoint(%d) = %d, want %d", fail, got, want)
		}
	}
}

func TestRunDeterministicGivenSeeds(t *testing.T) {
	run := func() *RunStats {
		stats, err := RunOnCluster(newTestCluster(21), RunConfig{
			Profile: fastProfile(22),
			Policy:  OverheadBudget{MaxOverhead: 0.10},
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	a, b := run(), run()
	if a.CheckpointsWritten != b.CheckpointsWritten || a.TotalSeconds != b.TotalSeconds {
		t.Fatal("identical seeds produced different runs")
	}
}
