// Package ckpt implements the checkpoint-restart middleware of the paper's
// Section V-B: checkpointing as a workflow component with explicit,
// model-driven policies instead of a hard-coded "every x timesteps"
// constant. Policies consume the observable state the paper's I/O middleware
// exposes — elapsed runtime, accumulated checkpoint I/O cost, time since the
// last checkpoint — and decide, after each timestep, whether to write.
//
// The headline policy is OverheadBudget: "applications declare the maximum
// allowable checkpointing I/O overhead as a percentage of the total
// application runtime; the I/O middleware issues a checkpoint only as long
// as the current I/O overhead is within the preset value."
package ckpt

import (
	"fmt"
)

// State is what a policy can observe when deciding after a completed step.
type State struct {
	// Step is the 1-based index of the step that just completed.
	Step int
	// TotalSteps is the planned run length.
	TotalSteps int
	// Elapsed is total wall time so far (compute + checkpoint I/O).
	Elapsed float64
	// CheckpointTime is the accumulated wall time spent in checkpoint I/O.
	CheckpointTime float64
	// LastCheckpointStep is the step after which the last checkpoint was
	// written (0 = none yet).
	LastCheckpointStep int
	// SinceCheckpoint is wall time since the last checkpoint completed (or
	// since the run began).
	SinceCheckpoint float64
	// LastWriteSeconds is the duration of the most recent checkpoint write
	// (0 = none yet).
	LastWriteSeconds float64
}

// Overhead returns the current checkpoint-I/O overhead fraction of total
// elapsed time (0 when nothing has elapsed).
func (s State) Overhead() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return s.CheckpointTime / s.Elapsed
}

// Policy decides whether to checkpoint after a step.
type Policy interface {
	// ShouldCheckpoint reports whether to write a checkpoint now.
	ShouldCheckpoint(s State) bool
	// Name identifies the policy in reports and provenance.
	Name() string
}

// FixedInterval is the traditional baseline: checkpoint every Every steps.
// The interval is chosen beforehand from assumed system characteristics —
// the very coupling to "the failure rate of the underlying system and the
// overhead of checkpoint I/O" the paper calls out as non-reusable.
type FixedInterval struct {
	Every int
}

// ShouldCheckpoint implements Policy.
func (p FixedInterval) ShouldCheckpoint(s State) bool {
	return p.Every > 0 && s.Step%p.Every == 0
}

// Name implements Policy.
func (p FixedInterval) Name() string { return fmt.Sprintf("fixed-interval(%d)", p.Every) }

// OverheadBudget writes a checkpoint whenever doing so keeps the I/O
// overhead within MaxOverhead of total runtime. The projected cost of the
// next write is estimated from the last observed write (first write is
// always permitted: with no observations the policy must explore).
type OverheadBudget struct {
	// MaxOverhead is the allowed fraction, e.g. 0.10 for 10%.
	MaxOverhead float64
}

// ShouldCheckpoint implements Policy.
func (p OverheadBudget) ShouldCheckpoint(s State) bool {
	if p.MaxOverhead <= 0 {
		return false
	}
	if s.LastWriteSeconds == 0 {
		// No cost observation yet; write once to learn it.
		return true
	}
	projected := (s.CheckpointTime + s.LastWriteSeconds) / (s.Elapsed + s.LastWriteSeconds)
	return projected <= p.MaxOverhead
}

// Name implements Policy.
func (p OverheadBudget) Name() string {
	return fmt.Sprintf("overhead-budget(%.0f%%)", p.MaxOverhead*100)
}

// MinGap forces a checkpoint whenever more than Gap seconds passed since the
// last one, regardless of cost — the paper's "further fine-tuning may be
// done to ensure a certain minimum frequency of checkpointing".
type MinGap struct {
	Gap float64
}

// ShouldCheckpoint implements Policy.
func (p MinGap) ShouldCheckpoint(s State) bool {
	return p.Gap > 0 && s.SinceCheckpoint >= p.Gap
}

// Name implements Policy.
func (p MinGap) Name() string { return fmt.Sprintf("min-gap(%.0fs)", p.Gap) }

// FailureAware forces a checkpoint when the last write cost abnormally
// exceeds the typical cost — the paper's observation that "an abnormally
// high I/O cost may be indicative of a system more prone to failure, and
// thus force a checkpoint to be issued".
type FailureAware struct {
	// SpikeFactor is the multiple of the running-average write time that
	// counts as abnormal (e.g. 3).
	SpikeFactor float64

	// mean tracks the running average of observed write times.
	observations int
	mean         float64
}

// Observe feeds a completed write duration into the running average.
func (p *FailureAware) Observe(writeSeconds float64) {
	p.observations++
	p.mean += (writeSeconds - p.mean) / float64(p.observations)
}

// ShouldCheckpoint implements Policy.
func (p *FailureAware) ShouldCheckpoint(s State) bool {
	if p.SpikeFactor <= 0 || p.observations < 2 || s.LastWriteSeconds == 0 {
		return false
	}
	return s.LastWriteSeconds > p.SpikeFactor*p.mean
}

// Name implements Policy.
func (p *FailureAware) Name() string { return fmt.Sprintf("failure-aware(×%.1f)", p.SpikeFactor) }

// AnyOf composes policies with OR: checkpoint if any member fires. This is
// how the budget policy gets a minimum-frequency floor or a failure-aware
// override, matching the paper's "policies can then be constructed using a
// combination of some or all of the exposed parameters".
type AnyOf struct {
	Policies []Policy
}

// ShouldCheckpoint implements Policy.
func (p AnyOf) ShouldCheckpoint(s State) bool {
	for _, m := range p.Policies {
		if m.ShouldCheckpoint(s) {
			return true
		}
	}
	return false
}

// Name implements Policy.
func (p AnyOf) Name() string {
	name := "any-of("
	for i, m := range p.Policies {
		if i > 0 {
			name += ", "
		}
		name += m.Name()
	}
	return name + ")"
}

// AllOf composes policies with AND: checkpoint only when every member
// agrees (e.g. overhead within budget AND minimum spacing elapsed).
type AllOf struct {
	Policies []Policy
}

// ShouldCheckpoint implements Policy.
func (p AllOf) ShouldCheckpoint(s State) bool {
	if len(p.Policies) == 0 {
		return false
	}
	for _, m := range p.Policies {
		if !m.ShouldCheckpoint(s) {
			return false
		}
	}
	return true
}

// Name implements Policy.
func (p AllOf) Name() string {
	name := "all-of("
	for i, m := range p.Policies {
		if i > 0 {
			name += ", "
		}
		name += m.Name()
	}
	return name + ")"
}
