package ckpt

import (
	"fairflow/internal/expt"
	"fairflow/internal/hpcsim"
	"fairflow/internal/simapp"
)

// SweepPoint is one budget's aggregate over repeated runs (paper Fig. 3).
type SweepPoint struct {
	Budget float64
	// MeanCheckpoints is the average checkpoints written across runs.
	MeanCheckpoints float64
	// MeanOverhead is the average realised I/O overhead fraction.
	MeanOverhead float64
	// Counts holds the per-run checkpoint counts.
	Counts []int
}

// SweepConfig parameterises the Fig. 3 experiment.
type SweepConfig struct {
	// Budgets are the permitted I/O overhead fractions to sweep.
	Budgets []float64
	// RunsPerBudget averages out filesystem noise.
	RunsPerBudget int
	// ClusterNodes sizes the simulated machine (≥ profile nodes).
	ClusterNodes int
	// FS configures the shared filesystem (zero = DefaultSummitFS).
	FS hpcsim.FSConfig
	// Profile is the application; its Seed is re-derived per run.
	Profile simapp.Profile
	// Walltime bounds each run.
	Walltime float64
	// Seed drives all run-level randomness.
	Seed int64
}

// DefaultSweepConfig reproduces the paper's setup: 50 steps × 1 TB on 128
// nodes, budgets from 1% to 50%.
func DefaultSweepConfig(seed int64) SweepConfig {
	return SweepConfig{
		Budgets:       []float64{0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50},
		RunsPerBudget: 5,
		ClusterNodes:  128,
		FS:            hpcsim.CongestedFS(),
		Profile:       simapp.SummitProfile(seed),
		Seed:          seed,
	}
}

// OverheadSweep runs the Fig. 3 experiment: for each permitted overhead
// budget, run the application several times on a freshly seeded cluster and
// record how many checkpoints the OverheadBudget policy wrote. The expected
// shape is monotone growth saturating at the step count.
func OverheadSweep(cfg SweepConfig) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(cfg.Budgets))
	for bi, budget := range cfg.Budgets {
		pt := SweepPoint{Budget: budget}
		var overheads []float64
		for run := 0; run < cfg.RunsPerBudget; run++ {
			seed := expt.SplitSeed(cfg.Seed, bi*1000+run)
			stats, err := runOnce(cfg, OverheadBudget{MaxOverhead: budget}, seed)
			if err != nil {
				return nil, err
			}
			pt.Counts = append(pt.Counts, stats.CheckpointsWritten)
			pt.MeanCheckpoints += float64(stats.CheckpointsWritten)
			overheads = append(overheads, stats.OverheadFraction())
		}
		pt.MeanCheckpoints /= float64(cfg.RunsPerBudget)
		pt.MeanOverhead = expt.Mean(overheads)
		out = append(out, pt)
	}
	return out, nil
}

// RunVariation runs the Fig. 4 experiment: many runs at a single budget,
// with per-run variation in both the application's compute intensity
// ("configured to perform more/less computations") and the filesystem
// state, returning the per-run checkpoint counts whose spread the paper
// plots.
func RunVariation(cfg SweepConfig, budget float64, runs int) ([]RunStats, error) {
	out := make([]RunStats, 0, runs)
	for run := 0; run < runs; run++ {
		seed := expt.SplitSeed(cfg.Seed, 7_000_000+run)
		rng := expt.NewRNG(seed)
		runCfg := cfg
		// Vary compute intensity ±40% between runs.
		runCfg.Profile.ComputeScale = expt.ClampedNormal(rng, 1.0, 0.2, 0.6, 1.4)
		stats, err := runOnce(runCfg, OverheadBudget{MaxOverhead: budget}, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, *stats)
	}
	return out, nil
}

// PolicyComparison runs the fixed-interval baseline and the overhead-budget
// policy on identically seeded clusters — the ablation isolating the paper's
// design choice.
type PolicyComparison struct {
	Fixed  RunStats
	Budget RunStats
}

// ComparePolicies runs both policies under the same seed.
func ComparePolicies(cfg SweepConfig, every int, budget float64) (*PolicyComparison, error) {
	seed := expt.SplitSeed(cfg.Seed, 42)
	fixed, err := runOnce(cfg, FixedInterval{Every: every}, seed)
	if err != nil {
		return nil, err
	}
	budgeted, err := runOnce(cfg, OverheadBudget{MaxOverhead: budget}, seed)
	if err != nil {
		return nil, err
	}
	return &PolicyComparison{Fixed: *fixed, Budget: *budgeted}, nil
}

// runOnce builds a fresh cluster and executes one run.
func runOnce(cfg SweepConfig, policy Policy, seed int64) (*RunStats, error) {
	nodes := cfg.ClusterNodes
	if nodes < cfg.Profile.Nodes {
		nodes = cfg.Profile.Nodes
	}
	sim := hpcsim.New(seed)
	cluster := hpcsim.NewCluster(sim, hpcsim.ClusterConfig{Nodes: nodes, FS: cfg.FS}, expt.SplitSeed(seed, 1))
	profile := cfg.Profile
	profile.Seed = expt.SplitSeed(seed, 2)
	return RunOnCluster(cluster, RunConfig{Profile: profile, Policy: policy, Walltime: cfg.Walltime})
}

// RecoveryPoint returns the step a restart would resume from if the run
// failed right after failAtStep: the latest checkpointed step ≤ failAtStep,
// or 0 (start over) if none. The difference failAtStep − RecoveryPoint is
// the recomputation the checkpoint spacing costs — the quantity more
// frequent checkpointing buys down.
func RecoveryPoint(stats RunStats, failAtStep int) int {
	best := 0
	for _, s := range stats.CheckpointSteps {
		if s <= failAtStep && s > best {
			best = s
		}
	}
	return best
}
