package ckpt

import (
	"fmt"
	"time"
)

// App is what the real-execution checkpoint middleware needs from an
// application: stepping, and snapshot/restore of full state. The simapp
// Gray–Scott solver satisfies this shape via a thin adapter.
type App interface {
	// Step advances the application one timestep.
	Step()
	// Snapshot captures restartable state.
	Snapshot() (any, error)
	// Restore resets the application to a snapshot.
	Restore(snapshot any) error
}

// Clock abstracts time for the real runner so tests can be deterministic.
type Clock func() time.Time

// RealRunner drives a real (in-process) application under a checkpoint
// policy, measuring actual wall time — the same middleware contract as the
// simulated driver, against live code instead of the cluster model.
type RealRunner struct {
	App    App
	Policy Policy
	// Keep bounds retained snapshots (oldest evicted; ≥1, default 1).
	Keep int
	// Now is the time source (default time.Now).
	Now Clock
}

// RealStats reports a real run.
type RealStats struct {
	Policy             string
	StepsCompleted     int
	CheckpointsWritten int
	CheckpointSteps    []int
	ComputeSeconds     float64
	CheckpointSeconds  float64
}

// Retained is one kept snapshot.
type Retained struct {
	Step     int
	Snapshot any
}

// Run executes steps timesteps, consulting the policy after each; snapshots
// are taken synchronously (checkpoint time is the snapshot cost). It
// returns the stats and the retained snapshots, newest last.
func (r *RealRunner) Run(steps int) (*RealStats, []Retained, error) {
	if r.App == nil || r.Policy == nil {
		return nil, nil, fmt.Errorf("ckpt: real runner needs an app and a policy")
	}
	if steps < 1 {
		return nil, nil, fmt.Errorf("ckpt: need ≥1 step")
	}
	keep := r.Keep
	if keep < 1 {
		keep = 1
	}
	now := r.Now
	if now == nil {
		now = time.Now
	}

	stats := &RealStats{Policy: r.Policy.Name()}
	fa, faOK := r.Policy.(*FailureAware)
	var retained []Retained
	start := now()
	lastCkptEnd := start
	var lastWrite float64

	for step := 1; step <= steps; step++ {
		computeStart := now()
		r.App.Step()
		stats.StepsCompleted++
		stats.ComputeSeconds += now().Sub(computeStart).Seconds()

		st := State{
			Step:               step,
			TotalSteps:         steps,
			Elapsed:            now().Sub(start).Seconds(),
			CheckpointTime:     stats.CheckpointSeconds,
			LastCheckpointStep: lastStep(stats.CheckpointSteps),
			SinceCheckpoint:    now().Sub(lastCkptEnd).Seconds(),
			LastWriteSeconds:   lastWrite,
		}
		if !r.Policy.ShouldCheckpoint(st) {
			continue
		}
		writeStart := now()
		snap, err := r.App.Snapshot()
		if err != nil {
			return nil, nil, fmt.Errorf("ckpt: snapshot at step %d: %w", step, err)
		}
		elapsed := now().Sub(writeStart).Seconds()
		stats.CheckpointSeconds += elapsed
		stats.CheckpointsWritten++
		stats.CheckpointSteps = append(stats.CheckpointSteps, step)
		lastWrite = elapsed
		lastCkptEnd = now()
		if faOK {
			fa.Observe(elapsed)
		}
		retained = append(retained, Retained{Step: step, Snapshot: snap})
		if len(retained) > keep {
			retained = retained[len(retained)-keep:]
		}
	}
	return stats, retained, nil
}

// RestoreLatest rewinds the app to the newest retained snapshot and returns
// its step (0 and no-op when none exist).
func (r *RealRunner) RestoreLatest(retained []Retained) (int, error) {
	if len(retained) == 0 {
		return 0, nil
	}
	last := retained[len(retained)-1]
	if err := r.App.Restore(last.Snapshot); err != nil {
		return 0, err
	}
	return last.Step, nil
}
