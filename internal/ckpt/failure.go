package ckpt

import (
	"fmt"
	"math/rand"

	"fairflow/internal/expt"
	"fairflow/internal/hpcsim"
)

// FailureRunConfig extends RunConfig with an application-level failure
// process: failures arrive with exponential inter-arrival times (mean MTTF)
// and throw the application back to its last stored checkpoint — the
// scenario checkpointing exists for, and the axis along which the policies
// actually trade off (frequent checkpoints: more I/O overhead, less lost
// work; rare checkpoints: the reverse).
type FailureRunConfig struct {
	RunConfig
	// MTTF is the mean time between failures in seconds (0 disables).
	MTTF float64
	// RestartLatency is the fixed cost of coming back up after a failure
	// (re-queue, reload, re-initialise) before recomputation starts.
	RestartLatency float64
	// MaxFailures aborts pathological runs (0 = 1000).
	MaxFailures int
	// FailureSeed drives the failure process independently of the app and
	// filesystem streams.
	FailureSeed int64
}

// FailureRunStats extends RunStats with failure accounting.
type FailureRunStats struct {
	RunStats
	// Failures is how many failures struck.
	Failures int
	// LostStepWork counts recomputed steps (work done, destroyed, redone).
	LostStepWork int
	// RestartSeconds is time spent in restart latency.
	RestartSeconds float64
}

// RunWithFailures executes the profiled application under the policy while
// failures strike: at each failure the application loses all steps since
// its last checkpoint and resumes from there after RestartLatency. The run
// ends when all steps complete or the walltime expires.
func RunWithFailures(cluster *hpcsim.Cluster, cfg FailureRunConfig) (*FailureRunStats, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("ckpt: nil policy")
	}
	stepTimes, err := cfg.Profile.StepTimes()
	if err != nil {
		return nil, err
	}
	if cfg.Walltime <= 0 {
		total := 0.0
		for _, t := range stepTimes {
			total += t
		}
		// Failures inflate runtime; leave generous headroom.
		cfg.Walltime = 20 * total
	}
	maxFailures := cfg.MaxFailures
	if maxFailures <= 0 {
		maxFailures = 1000
	}

	stats := &FailureRunStats{RunStats: RunStats{Policy: cfg.Policy.Name()}}
	fa, faOK := cfg.Policy.(*FailureAware)
	frng := rand.New(rand.NewSource(cfg.FailureSeed))
	nextFailureIn := func() float64 {
		if cfg.MTTF <= 0 {
			return 1e18
		}
		return expt.Exponential(frng, cfg.MTTF)
	}

	finished := false
	completed := false
	_, err = cluster.Submit(hpcsim.JobSpec{
		Name:     "gray-scott-ft",
		Nodes:    cfg.Profile.Nodes,
		Walltime: cfg.Walltime,
		OnStart: func(a *hpcsim.Allocation) {
			sim := cluster.Sim()
			start := sim.Now()
			lastCkptEnd := start
			lastCkptStep := 0
			var lastWrite float64
			failAt := sim.Now() + nextFailureIn()

			var runStep func(step int)
			finish := func() {
				if finished {
					return
				}
				finished = true
				completed = true
				stats.TotalSeconds = sim.Now() - start
				a.Release()
			}
			// maybeFail checks whether a failure lands before `until`; if
			// so it rewinds to the last checkpoint and returns the step to
			// resume from, scheduling the continuation itself.
			runStep = func(step int) {
				if finished {
					return
				}
				if step >= len(stepTimes) {
					finish()
					return
				}
				compute := stepTimes[step]
				if a.Remaining() <= compute {
					stats.Expired = true
					finish()
					return
				}
				if sim.Now()+compute >= failAt && stats.Failures < maxFailures {
					// Failure strikes during this step's computation: all
					// work since the last checkpoint is lost.
					stats.Failures++
					lost := step - lastCkptStep
					stats.LostStepWork += lost
					delay := (failAt - sim.Now()) + cfg.RestartLatency
					stats.RestartSeconds += cfg.RestartLatency
					failAt = failAt + cfg.RestartLatency + nextFailureIn()
					resume := lastCkptStep
					sim.After(delay, func() { runStep(resume) })
					return
				}
				sim.After(compute, func() {
					if finished {
						return
					}
					stats.StepsCompleted++
					stats.ComputeSeconds += compute
					st := State{
						Step:               step + 1,
						TotalSteps:         len(stepTimes),
						Elapsed:            sim.Now() - start,
						CheckpointTime:     stats.CheckpointSeconds,
						LastCheckpointStep: lastCkptStep,
						SinceCheckpoint:    sim.Now() - lastCkptEnd,
						LastWriteSeconds:   lastWrite,
					}
					if cfg.Policy.ShouldCheckpoint(st) {
						a.WriteFS(len(a.Nodes()), cfg.Profile.BytesPerCheckpoint, func(elapsed float64) {
							if finished {
								return
							}
							stats.CheckpointSeconds += elapsed
							stats.CheckpointsWritten++
							stats.CheckpointSteps = append(stats.CheckpointSteps, step+1)
							lastWrite = elapsed
							lastCkptEnd = sim.Now()
							lastCkptStep = step + 1
							if faOK {
								fa.Observe(elapsed)
							}
							runStep(step + 1)
						})
					} else {
						runStep(step + 1)
					}
				})
			}
			runStep(0)
		},
		OnEnd: func(j *hpcsim.Job) {
			if j.State == hpcsim.JobExpired && !finished {
				finished = true
				completed = true
				stats.Expired = true
				stats.TotalSeconds = j.Ended - j.Started
			}
		},
	})
	if err != nil {
		return nil, err
	}
	cluster.Sim().Run()
	if !completed {
		return nil, fmt.Errorf("ckpt: failure run never completed")
	}
	return stats, nil
}

// FailurePolicyOutcome aggregates one policy's behaviour under failures.
type FailurePolicyOutcome struct {
	Policy        string
	MeanTotal     float64 // mean time-to-solution (s)
	MeanLostSteps float64
	MeanCkpts     float64
	MeanFailures  float64
	ExpiredRuns   int
}

// CompareUnderFailures runs each policy through `runs` failure-laden
// executions on identically seeded clusters and aggregates time-to-solution
// — the extension ablation: which policy finishes fastest when the system
// actually fails.
func CompareUnderFailures(scfg SweepConfig, policies []Policy, mttf, restartLatency float64, runs int) ([]FailurePolicyOutcome, error) {
	out := make([]FailurePolicyOutcome, 0, len(policies))
	for _, pol := range policies {
		agg := FailurePolicyOutcome{Policy: pol.Name()}
		for run := 0; run < runs; run++ {
			seed := expt.SplitSeed(scfg.Seed, 31_000+run)
			nodes := scfg.ClusterNodes
			if nodes < scfg.Profile.Nodes {
				nodes = scfg.Profile.Nodes
			}
			sim := hpcsim.New(seed)
			cluster := hpcsim.NewCluster(sim, hpcsim.ClusterConfig{Nodes: nodes, FS: scfg.FS}, expt.SplitSeed(seed, 1))
			profile := scfg.Profile
			profile.Seed = expt.SplitSeed(seed, 2)
			fcfg := FailureRunConfig{
				RunConfig:      RunConfig{Profile: profile, Policy: freshPolicy(pol), Walltime: scfg.Walltime},
				MTTF:           mttf,
				RestartLatency: restartLatency,
				FailureSeed:    expt.SplitSeed(seed, 3),
			}
			stats, err := RunWithFailures(cluster, fcfg)
			if err != nil {
				return nil, err
			}
			agg.MeanTotal += stats.TotalSeconds
			agg.MeanLostSteps += float64(stats.LostStepWork)
			agg.MeanCkpts += float64(stats.CheckpointsWritten)
			agg.MeanFailures += float64(stats.Failures)
			if stats.Expired {
				agg.ExpiredRuns++
			}
		}
		n := float64(runs)
		agg.MeanTotal /= n
		agg.MeanLostSteps /= n
		agg.MeanCkpts /= n
		agg.MeanFailures /= n
		out = append(out, agg)
	}
	return out, nil
}

// freshPolicy clones stateful policies so repeated runs do not share
// learning state (FailureAware keeps a running mean).
func freshPolicy(p Policy) Policy {
	if fa, ok := p.(*FailureAware); ok {
		return &FailureAware{SpikeFactor: fa.SpikeFactor}
	}
	return p
}
