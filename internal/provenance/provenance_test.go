package provenance

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2021, 6, 1, 12, 0, 0, 0, time.UTC)

func rec(id, component, campaign string, status Status, start time.Time, dur time.Duration) Record {
	r := Record{
		ID: id, Component: component, CampaignID: campaign,
		Status: status, Start: start,
	}
	if status != StatusRunning {
		r.End = start.Add(dur)
	}
	return r
}

func TestRecordValidate(t *testing.T) {
	good := rec("r1", "c", "camp", StatusSucceeded, t0, time.Minute)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Record{
		{Component: "c", Status: StatusSucceeded, Start: t0},                                     // no id
		{ID: "x", Status: StatusSucceeded, Start: t0},                                            // no component
		{ID: "x", Component: "c", Status: "weird", Start: t0},                                    // bad status
		{ID: "x", Component: "c", Status: StatusSucceeded, Start: t0, End: t0.Add(-time.Second)}, // ends early
		{ID: "x", Component: "c", Status: StatusSucceeded, Start: t0,
			Annotations: []Annotation{{Key: "k", Value: "v", Sensitivity: "odd"}}}, // bad sensitivity
	}
	for i, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: invalid record accepted", i)
		}
	}
}

func TestRecordDuration(t *testing.T) {
	r := rec("r", "c", "", StatusSucceeded, t0, 90*time.Second)
	if r.Duration() != 90*time.Second {
		t.Fatalf("duration = %v", r.Duration())
	}
	running := rec("r2", "c", "", StatusRunning, t0, 0)
	if running.Duration() != 0 {
		t.Fatal("running record should have zero duration")
	}
}

func TestStoreAppendRejectsDuplicates(t *testing.T) {
	s := NewStore()
	if err := s.Append(rec("a", "c", "", StatusSucceeded, t0, time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("a", "c", "", StatusSucceeded, t0, time.Second)); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestStoreCloseLifecycle(t *testing.T) {
	s := NewStore()
	if err := s.Append(rec("a", "c", "", StatusRunning, t0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close("a", StatusSucceeded, t0.Add(time.Minute), 0); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("a")
	if got.Status != StatusSucceeded || got.Duration() != time.Minute {
		t.Fatalf("closed record: %+v", got)
	}
	if err := s.Close("a", StatusFailed, t0.Add(2*time.Minute), 1); err == nil {
		t.Fatal("re-closed a terminal record")
	}
	if err := s.Close("missing", StatusFailed, t0, 1); err == nil {
		t.Fatal("closed a missing record")
	}
	if err := s.Close("a", StatusRunning, t0, 0); err == nil {
		t.Fatal("closed to running")
	}
}

func TestStoreSelectFilters(t *testing.T) {
	s := NewStore()
	mustAppend := func(r Record) {
		t.Helper()
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	r1 := rec("1", "paste", "campA", StatusSucceeded, t0, time.Second)
	r1.SweepPoint = map[string]string{"feature": "f1"}
	r2 := rec("2", "paste", "campA", StatusFailed, t0.Add(time.Hour), time.Second)
	r2.SweepPoint = map[string]string{"feature": "f2"}
	r3 := rec("3", "irf", "campB", StatusSucceeded, t0, time.Second)
	mustAppend(r1)
	mustAppend(r2)
	mustAppend(r3)

	if got := s.Select(Query{Component: "paste"}); len(got) != 2 {
		t.Fatalf("component filter: %d", len(got))
	}
	if got := s.Select(Query{CampaignID: "campB"}); len(got) != 1 || got[0].ID != "3" {
		t.Fatalf("campaign filter: %+v", got)
	}
	if got := s.Select(Query{Status: StatusFailed}); len(got) != 1 || got[0].ID != "2" {
		t.Fatalf("status filter: %+v", got)
	}
	if got := s.Select(Query{SweepPoint: map[string]string{"feature": "f1"}}); len(got) != 1 || got[0].ID != "1" {
		t.Fatalf("sweep filter: %+v", got)
	}
	if got := s.Select(Query{Since: t0.Add(30 * time.Minute)}); len(got) != 1 || got[0].ID != "2" {
		t.Fatalf("since filter: %+v", got)
	}
	if got := s.Select(Query{}); len(got) != 3 {
		t.Fatalf("empty query: %d", len(got))
	}
}

func TestSummarize(t *testing.T) {
	s := NewStore()
	for i := 0; i < 5; i++ {
		st := StatusSucceeded
		if i >= 3 {
			st = StatusFailed
		}
		r := rec(fmt.Sprintf("r%d", i), "irf", "camp", st, t0.Add(time.Duration(i)*time.Minute), time.Minute)
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	sum := s.Summarize("camp")
	if sum.Total != 5 || sum.ByStatus[StatusSucceeded] != 3 || sum.ByStatus[StatusFailed] != 2 {
		t.Fatalf("summary: %+v", sum)
	}
	if len(sum.FailedIDs) != 2 {
		t.Fatalf("failed ids: %v", sum.FailedIDs)
	}
	if sum.WallTime != 5*time.Minute {
		t.Fatalf("wall time = %v", sum.WallTime)
	}
	if sum.ByComponent["irf"] != 5 {
		t.Fatalf("by component: %+v", sum.ByComponent)
	}
}

func TestIncompletePoints(t *testing.T) {
	s := NewStore()
	all := []map[string]string{
		{"f": "a"}, {"f": "b"}, {"f": "c"},
	}
	ok := rec("1", "irf", "camp", StatusSucceeded, t0, time.Second)
	ok.SweepPoint = map[string]string{"f": "a"}
	fail := rec("2", "irf", "camp", StatusFailed, t0, time.Second)
	fail.SweepPoint = map[string]string{"f": "b"}
	for _, r := range []Record{ok, fail} {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	missing := s.IncompletePoints("camp", all)
	if len(missing) != 2 {
		t.Fatalf("expected b and c incomplete, got %v", missing)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := NewStore()
	r := rec("a", "c", "camp", StatusSucceeded, t0, time.Second)
	r.Annotations = []Annotation{{Key: "k", Value: "v", Sensitivity: Public}}
	if err := s.Append(r); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("b", "c", "camp", StatusFailed, t0, time.Second)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip lost records: %d", back.Len())
	}
	got, _ := back.Get("a")
	if len(got.Annotations) != 1 || got.Annotations[0].Key != "k" {
		t.Fatalf("annotation lost: %+v", got)
	}
}

// TestJSONLRoundTripDigestFields: the Inputs/Outputs digest maps — the gauge
// ontology's input-digest/output-digest terms — must survive JSONL
// serialization exactly, key by key.
func TestJSONLRoundTripDigestFields(t *testing.T) {
	s := NewStore()
	r := rec("a", "savanna-run", "camp", StatusSucceeded, t0, time.Second)
	r.Inputs = map[string]string{
		"component": "sha256:0f1e2d3c4b5a69788796a5b4c3d2e1f00f1e2d3c4b5a69788796a5b4c3d2e1f0",
		"genotypes": "sha256:aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
	}
	r.Outputs = map[string]string{
		"result": "sha256:bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb",
	}
	if err := s.Append(r); err != nil {
		t.Fatal(err)
	}
	// A record with no digests keeps nil maps through the round-trip.
	if err := s.Append(rec("b", "savanna-run", "camp", StatusSucceeded, t0, time.Second)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := back.Get("a")
	if !ok {
		t.Fatal("record a lost")
	}
	if len(got.Inputs) != 2 || got.Inputs["component"] != r.Inputs["component"] ||
		got.Inputs["genotypes"] != r.Inputs["genotypes"] {
		t.Fatalf("inputs mangled: %v", got.Inputs)
	}
	if len(got.Outputs) != 1 || got.Outputs["result"] != r.Outputs["result"] {
		t.Fatalf("outputs mangled: %v", got.Outputs)
	}
	bare, _ := back.Get("b")
	if bare.Inputs != nil || bare.Outputs != nil {
		t.Fatalf("digest-free record grew maps: %v %v", bare.Inputs, bare.Outputs)
	}
}

// TestIncompletePointsDuplicates: repeated sweep points in the plan (and
// repeated attempts in the store) must not confuse the resubmission set — a
// point succeeded once is complete however many times it appears, and each
// incomplete duplicate is reported once per occurrence.
func TestIncompletePointsDuplicates(t *testing.T) {
	s := NewStore()
	all := []map[string]string{
		{"f": "a"}, {"f": "a"}, // duplicate planned point
		{"f": "b"},
		{"f": "c"}, {"f": "c"},
	}
	okA := rec("1", "irf", "camp", StatusSucceeded, t0, time.Second)
	okA.SweepPoint = map[string]string{"f": "a"}
	failB1 := rec("2", "irf", "camp", StatusFailed, t0, time.Second)
	failB1.SweepPoint = map[string]string{"f": "b"}
	failB2 := rec("3", "irf", "camp", StatusFailed, t0.Add(time.Minute), time.Second)
	failB2.SweepPoint = map[string]string{"f": "b"} // second failed attempt
	for _, r := range []Record{okA, failB1, failB2} {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	missing := s.IncompletePoints("camp", all)
	if len(missing) != 3 {
		t.Fatalf("want b plus both c occurrences incomplete, got %v", missing)
	}
	counts := map[string]int{}
	for _, p := range missing {
		counts[p["f"]]++
	}
	if counts["a"] != 0 || counts["b"] != 1 || counts["c"] != 2 {
		t.Fatalf("incomplete point multiset wrong: %v", counts)
	}
}

func TestStoreConcurrentAppend(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r := rec(fmt.Sprintf("g%d-r%d", g, i), "c", "camp", StatusSucceeded, t0, time.Second)
				if err := s.Append(r); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("len = %d, want 800", s.Len())
	}
	if got := s.Select(Query{CampaignID: "camp"}); len(got) != 800 {
		t.Fatalf("select = %d", len(got))
	}
}

func TestExportPolicyApply(t *testing.T) {
	r := rec("a", "c", "camp", StatusSucceeded, t0, time.Second)
	r.Environment = map[string]string{"machine": "summit", "user_account": "bio123"}
	r.Annotations = []Annotation{
		{Key: "note", Value: "ok", Sensitivity: Public},
		{Key: "queue", Value: "batch", Sensitivity: Internal},
		{Key: "api_token", Value: "xyz", Sensitivity: Secret},
	}

	pub := DefaultExportPolicy()
	out, ok := pub.Apply(r)
	if !ok {
		t.Fatal("succeeded record excluded")
	}
	if len(out.Annotations) != 1 || out.Annotations[0].Key != "note" {
		t.Fatalf("public policy kept: %+v", out.Annotations)
	}
	if out.Environment != nil {
		t.Fatal("public policy kept environment")
	}

	internal := ExportPolicy{MaxSensitivity: Internal, IncludeEnvironment: true,
		ScrubKeys: []string{"account", "token"}, IncludeFailures: true}
	out, _ = internal.Apply(r)
	if len(out.Annotations) != 2 {
		t.Fatalf("internal policy kept %d annotations", len(out.Annotations))
	}
	if _, leaked := out.Environment["user_account"]; leaked {
		t.Fatal("scrub key leaked")
	}
	if out.Environment["machine"] != "summit" {
		t.Fatal("benign environment entry dropped")
	}

	fail := rec("f", "c", "camp", StatusFailed, t0, time.Second)
	if _, ok := pub.Apply(fail); ok {
		t.Fatal("successes-only policy kept a failure")
	}
	if _, ok := internal.Apply(fail); !ok {
		t.Fatal("failures policy dropped a failure")
	}
}

func TestSecretsNeverExported(t *testing.T) {
	r := rec("a", "c", "camp", StatusSucceeded, t0, time.Second)
	r.Annotations = []Annotation{{Key: "credential", Value: "s3cr3t", Sensitivity: Secret}}
	p := ExportPolicy{MaxSensitivity: Secret, IncludeFailures: true}
	out, _ := p.Apply(r)
	if len(out.Annotations) != 0 {
		t.Fatal("secret annotation exported even at MaxSensitivity=Secret")
	}
}

func TestExportResearchObject(t *testing.T) {
	s := NewStore()
	okRec := rec("ok", "c", "camp", StatusSucceeded, t0, time.Second)
	okRec.Annotations = []Annotation{
		{Key: "note", Value: "fine", Sensitivity: Public},
		{Key: "path", Value: "/gpfs/...", Sensitivity: Internal},
	}
	failRec := rec("bad", "c", "camp", StatusFailed, t0, time.Second)
	for _, r := range []Record{okRec, failRec} {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	ro, err := Export(s, "camp", DefaultExportPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(ro.Records) != 1 || ro.Records[0].ID != "ok" {
		t.Fatalf("exported: %+v", ro.Records)
	}
	if ro.Withheld["record:failed"] != 1 {
		t.Fatalf("withheld manifest: %v", ro.Withheld)
	}
	if ro.Withheld["annotations"] != 1 {
		t.Fatalf("annotation withholding not counted: %v", ro.Withheld)
	}
	if _, err := Export(s, "ghost", DefaultExportPolicy()); err == nil {
		t.Fatal("export of empty campaign succeeded")
	}
}
