package provenance

import (
	"sort"
	"time"
)

// DurationStats summarises execution durations of a record selection — the
// "summarize, evaluate and enable queries over heterogeneous provenance
// logs" capability of the campaign-knowledge tier, used for straggler
// analysis and walltime planning.
type DurationStats struct {
	Count  int
	Mean   time.Duration
	Median time.Duration
	P95    time.Duration
	Min    time.Duration
	Max    time.Duration
}

// Durations computes duration statistics over the records matching q,
// ignoring records that are still running (no end time).
func (s *Store) Durations(q Query) DurationStats {
	var ds []time.Duration
	for _, r := range s.Select(q) {
		if d := r.Duration(); d > 0 || (!r.End.IsZero() && d == 0) {
			ds = append(ds, d)
		}
	}
	out := DurationStats{Count: len(ds)}
	if len(ds) == 0 {
		return out
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	out.Mean = sum / time.Duration(len(ds))
	out.Median = quantileDur(ds, 0.5)
	out.P95 = quantileDur(ds, 0.95)
	out.Min = ds[0]
	out.Max = ds[len(ds)-1]
	return out
}

func quantileDur(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[lo+1]-sorted[lo]))
}

// StragglerReport identifies runs whose duration exceeds factor × the
// median of their selection — the manual "which runs are holding up my
// set?" question the iRF-LOOP workflow answers from provenance instead of
// by watching the queue.
func (s *Store) StragglerReport(q Query, factor float64) []Record {
	stats := s.Durations(q)
	if stats.Count == 0 || factor <= 0 {
		return nil
	}
	threshold := time.Duration(float64(stats.Median) * factor)
	var out []Record
	for _, r := range s.Select(q) {
		if !r.End.IsZero() && r.Duration() > threshold {
			out = append(out, r)
		}
	}
	return out
}
