package provenance

import (
	"fmt"
	"testing"
	"time"
)

func seedDurations(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	durations := []time.Duration{
		10 * time.Second, 12 * time.Second, 11 * time.Second,
		9 * time.Second, 13 * time.Second,
		120 * time.Second, // the straggler
	}
	for i, d := range durations {
		if err := s.Append(rec(fmt.Sprintf("r%d", i), "irf", "camp", StatusSucceeded,
			t0.Add(time.Duration(i)*time.Minute), d)); err != nil {
			t.Fatal(err)
		}
	}
	// A running record must be excluded from duration stats.
	if err := s.Append(rec("running", "irf", "camp", StatusRunning, t0, 0)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDurations(t *testing.T) {
	s := seedDurations(t)
	stats := s.Durations(Query{CampaignID: "camp"})
	if stats.Count != 6 {
		t.Fatalf("count = %d (running record leaked?)", stats.Count)
	}
	if stats.Min != 9*time.Second || stats.Max != 120*time.Second {
		t.Fatalf("min/max: %v/%v", stats.Min, stats.Max)
	}
	if stats.Median < 11*time.Second || stats.Median > 12*time.Second {
		t.Fatalf("median: %v", stats.Median)
	}
	if stats.Mean <= stats.Median {
		t.Fatal("heavy tail should pull mean above median")
	}
	if stats.P95 < stats.Median || stats.P95 > stats.Max {
		t.Fatalf("p95: %v", stats.P95)
	}
}

func TestDurationsEmpty(t *testing.T) {
	s := NewStore()
	if got := s.Durations(Query{}); got.Count != 0 || got.Mean != 0 {
		t.Fatalf("empty stats: %+v", got)
	}
}

func TestStragglerReport(t *testing.T) {
	s := seedDurations(t)
	stragglers := s.StragglerReport(Query{CampaignID: "camp"}, 3)
	if len(stragglers) != 1 || stragglers[0].Duration() != 120*time.Second {
		t.Fatalf("stragglers: %+v", stragglers)
	}
	if got := s.StragglerReport(Query{CampaignID: "camp"}, 0); got != nil {
		t.Fatal("zero factor should return nil")
	}
	if got := s.StragglerReport(Query{CampaignID: "ghost"}, 3); got != nil {
		t.Fatal("empty selection should return nil")
	}
}

// TestQuantileDurEdges pins the interpolated quantile at its edges: q=0 is
// the minimum, q=1 the maximum, and a single sample is every quantile.
func TestQuantileDurEdges(t *testing.T) {
	sorted := []time.Duration{2 * time.Second, 5 * time.Second, 30 * time.Second}
	if got := quantileDur(sorted, 0); got != 2*time.Second {
		t.Errorf("q=0: got %v, want 2s", got)
	}
	if got := quantileDur(sorted, 1); got != 30*time.Second {
		t.Errorf("q=1: got %v, want 30s", got)
	}
	single := []time.Duration{7 * time.Second}
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := quantileDur(single, q); got != 7*time.Second {
			t.Errorf("single sample q=%v: got %v, want 7s", q, got)
		}
	}
}

// TestStragglerReportAllEqual checks the degenerate campaign where every run
// takes exactly the same time: nothing exceeds factor × median, so the
// report must be empty for any factor ≥ 1.
func TestStragglerReportAllEqual(t *testing.T) {
	s := NewStore()
	for i := 0; i < 5; i++ {
		if err := s.Append(rec(fmt.Sprintf("eq%d", i), "irf", "camp", StatusSucceeded,
			t0.Add(time.Duration(i)*time.Minute), 10*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	for _, factor := range []float64{1, 1.5, 2} {
		if got := s.StragglerReport(Query{CampaignID: "camp"}, factor); len(got) != 0 {
			t.Errorf("factor %v: %d stragglers reported among equal durations", factor, len(got))
		}
	}
}
