// Package provenance implements the provenance substrate behind the
// software-provenance gauge: per-execution records (tier 1), explicit
// campaign context enabling cross-run queries (tier 2), and exportability
// policies that decide which gathered provenance belongs in a distributable
// research object (tier 3).
package provenance

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Status of one recorded execution.
type Status string

// Execution statuses.
const (
	StatusSucceeded Status = "succeeded"
	StatusFailed    Status = "failed"
	StatusKilled    Status = "killed" // terminated by walltime/allocation end
	StatusRunning   Status = "running"
	// StatusSkipped marks a run never attempted: the campaign aborted (stop
	// condition) before the run was dispatched. Skipped runs stay in the
	// resubmission set.
	StatusSkipped Status = "skipped"
)

// Sensitivity classifies a record or annotation for export decisions.
type Sensitivity string

// Sensitivity levels, from freely shareable to internal-only.
const (
	Public   Sensitivity = "public"   // safe in any research object
	Internal Sensitivity = "internal" // site-specific paths, accounts, queues
	Secret   Sensitivity = "secret"   // credentials, PII; never exported
)

// Record is the provenance of one component execution. The fields up to
// Status constitute the gauge's "execution-logs" tier; CampaignID and
// SweepPoint add the "campaign-knowledge" tier.
type Record struct {
	ID        string            `json:"id"`
	Component string            `json:"component"`
	Start     time.Time         `json:"start"`
	End       time.Time         `json:"end,omitempty"`
	Status    Status            `json:"status"`
	ExitCode  int               `json:"exit_code"`
	Inputs    map[string]string `json:"inputs,omitempty"`  // name -> digest
	Outputs   map[string]string `json:"outputs,omitempty"` // name -> digest
	// Environment captures the execution environment (machine, queue,
	// module versions). Typically Internal sensitivity.
	Environment map[string]string `json:"environment,omitempty"`

	// CampaignID and SweepPoint place the execution inside a campaign: the
	// paper's point that automation needs "explicit context for the campaign
	// in which that execution took place".
	CampaignID string            `json:"campaign_id,omitempty"`
	SweepPoint map[string]string `json:"sweep_point,omitempty"` // parameter -> value

	// Annotations are free-form tagged facts with per-tag sensitivity.
	Annotations []Annotation `json:"annotations,omitempty"`

	// Resources is the execution's measured cost, digest-adjacent: two runs
	// with identical inputs but wildly different CPU or memory footprints are
	// a reproducibility signal worth recording. Nil when nothing was measured
	// (cached, skipped, or a platform without rusage).
	Resources *Resources `json:"resources,omitempty"`
}

// Resources is the kernel-accounted cost of one component execution.
type Resources struct {
	CPUUserSeconds   float64 `json:"cpu_user_seconds,omitempty"`
	CPUSystemSeconds float64 `json:"cpu_system_seconds,omitempty"`
	MaxRSSBytes      int64   `json:"max_rss_bytes,omitempty"`
}

// CPUSeconds is the total CPU time, user plus system.
func (r Resources) CPUSeconds() float64 {
	return r.CPUUserSeconds + r.CPUSystemSeconds
}

// Annotation is one tagged provenance fact.
type Annotation struct {
	Key         string      `json:"key"`
	Value       string      `json:"value"`
	Sensitivity Sensitivity `json:"sensitivity"`
}

// Duration returns the execution wall time (zero while running).
func (r Record) Duration() time.Duration {
	if r.End.IsZero() {
		return 0
	}
	return r.End.Sub(r.Start)
}

// Validate checks structural invariants.
func (r Record) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("provenance: record missing id")
	}
	if r.Component == "" {
		return fmt.Errorf("provenance: record %s missing component", r.ID)
	}
	switch r.Status {
	case StatusSucceeded, StatusFailed, StatusKilled, StatusRunning, StatusSkipped:
	default:
		return fmt.Errorf("provenance: record %s has unknown status %q", r.ID, r.Status)
	}
	if !r.End.IsZero() && r.End.Before(r.Start) {
		return fmt.Errorf("provenance: record %s ends before it starts", r.ID)
	}
	for _, a := range r.Annotations {
		switch a.Sensitivity {
		case Public, Internal, Secret:
		default:
			return fmt.Errorf("provenance: record %s annotation %q has unknown sensitivity %q", r.ID, a.Key, a.Sensitivity)
		}
	}
	return nil
}

// Store is an in-memory, concurrency-safe provenance store with append-only
// semantics (a record may be updated only while running, mirroring how a
// workflow engine closes records out).
type Store struct {
	mu      sync.RWMutex
	records map[string]Record
	order   []string // insertion order for stable listings
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{records: map[string]Record{}}
}

// Append validates and adds a new record. The ID must be unused.
func (s *Store) Append(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.records[r.ID]; dup {
		return fmt.Errorf("provenance: record %s already exists", r.ID)
	}
	s.records[r.ID] = r
	s.order = append(s.order, r.ID)
	return nil
}

// Close transitions a running record to a terminal status, setting its end
// time and exit code. Closing a non-running record is an error — provenance
// is otherwise immutable.
func (s *Store) Close(id string, status Status, end time.Time, exitCode int) error {
	if status == StatusRunning {
		return fmt.Errorf("provenance: cannot close %s to running", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.records[id]
	if !ok {
		return fmt.Errorf("provenance: unknown record %s", id)
	}
	if r.Status != StatusRunning {
		return fmt.Errorf("provenance: record %s already terminal (%s)", id, r.Status)
	}
	r.Status, r.End, r.ExitCode = status, end, exitCode
	if err := r.Validate(); err != nil {
		return err
	}
	s.records[id] = r
	return nil
}

// Get returns a record by ID.
func (s *Store) Get(id string) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.records[id]
	return r, ok
}

// Len reports the number of stored records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// Query selects records. Zero-valued fields match everything.
type Query struct {
	Component  string
	CampaignID string
	Status     Status
	// SweepPoint entries must all match the record's sweep point.
	SweepPoint map[string]string
	// Since filters to records starting at or after the instant.
	Since time.Time
}

// Select returns matching records in insertion order. This is the
// "cross-run query" capability of the campaign-knowledge tier.
func (s *Store) Select(q Query) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	for _, id := range s.order {
		r := s.records[id]
		if q.Component != "" && r.Component != q.Component {
			continue
		}
		if q.CampaignID != "" && r.CampaignID != q.CampaignID {
			continue
		}
		if q.Status != "" && r.Status != q.Status {
			continue
		}
		if !q.Since.IsZero() && r.Start.Before(q.Since) {
			continue
		}
		match := true
		for k, v := range q.SweepPoint {
			if r.SweepPoint[k] != v {
				match = false
				break
			}
		}
		if match {
			out = append(out, r)
		}
	}
	return out
}

// CampaignSummary aggregates one campaign's records: the summarisation over
// heterogeneous provenance logs the paper calls for.
type CampaignSummary struct {
	CampaignID  string         `json:"campaign_id"`
	Total       int            `json:"total"`
	ByStatus    map[Status]int `json:"by_status"`
	ByComponent map[string]int `json:"by_component"`
	WallTime    time.Duration  `json:"wall_time"` // span from first start to last end
	FailedIDs   []string       `json:"failed_ids,omitempty"`
}

// Summarize builds a CampaignSummary for the given campaign.
func (s *Store) Summarize(campaignID string) CampaignSummary {
	recs := s.Select(Query{CampaignID: campaignID})
	sum := CampaignSummary{
		CampaignID:  campaignID,
		Total:       len(recs),
		ByStatus:    map[Status]int{},
		ByComponent: map[string]int{},
	}
	var first, last time.Time
	for _, r := range recs {
		sum.ByStatus[r.Status]++
		sum.ByComponent[r.Component]++
		if r.Status == StatusFailed || r.Status == StatusKilled {
			sum.FailedIDs = append(sum.FailedIDs, r.ID)
		}
		if first.IsZero() || r.Start.Before(first) {
			first = r.Start
		}
		if r.End.After(last) {
			last = r.End
		}
	}
	sort.Strings(sum.FailedIDs)
	if !first.IsZero() && last.After(first) {
		sum.WallTime = last.Sub(first)
	}
	return sum
}

// IncompletePoints returns the sweep points of a campaign that have no
// succeeded record — exactly the set a resubmission needs to cover. This
// powers Savanna's "simply re-submit a partially completed SweepGroup".
func (s *Store) IncompletePoints(campaignID string, allPoints []map[string]string) []map[string]string {
	done := map[string]bool{}
	for _, r := range s.Select(Query{CampaignID: campaignID, Status: StatusSucceeded}) {
		done[pointKey(r.SweepPoint)] = true
	}
	var out []map[string]string
	for _, p := range allPoints {
		if !done[pointKey(p)] {
			out = append(out, p)
		}
	}
	return out
}

func pointKey(p map[string]string) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(p[k])
		b.WriteByte(';')
	}
	return b.String()
}

// WriteJSONL streams all records as JSON lines in insertion order.
func (s *Store) WriteJSONL(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	enc := json.NewEncoder(w)
	for _, id := range s.order {
		if err := enc.Encode(s.records[id]); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL loads records from a JSON-lines stream into a new store.
func ReadJSONL(r io.Reader) (*Store, error) {
	s := NewStore()
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return s, nil
		} else if err != nil {
			return nil, err
		}
		if err := s.Append(rec); err != nil {
			return nil, err
		}
	}
}
