package provenance

import (
	"fmt"
	"sort"
	"strings"
)

// ExportPolicy is the exportability tier of the provenance gauge: "not all
// provenance that is useful to the original author is appropriate to include
// in a distributable, reusable research object", but some is crucial when
// reusing components in a new context. A policy decides, per record and per
// field, what ships.
type ExportPolicy struct {
	// MaxSensitivity is the highest annotation sensitivity to retain.
	// Public keeps only public annotations; Internal keeps public+internal.
	// Secret data is never exported regardless of this setting.
	MaxSensitivity Sensitivity
	// IncludeEnvironment retains the environment map (scrubbed of entries
	// whose keys match ScrubKeys).
	IncludeEnvironment bool
	// ScrubKeys lists environment/annotation key substrings that are always
	// removed (e.g. "account", "token", "home").
	ScrubKeys []string
	// IncludeFailures retains failed/killed records; excluding them yields a
	// success-only object (common for published artifacts), including them
	// preserves the full execution history for debugging reuse.
	IncludeFailures bool
}

// DefaultExportPolicy is a conservative policy suitable for public research
// objects: public annotations only, no environment, successes only.
func DefaultExportPolicy() ExportPolicy {
	return ExportPolicy{
		MaxSensitivity:  Public,
		ScrubKeys:       []string{"account", "token", "secret", "password", "home"},
		IncludeFailures: false,
	}
}

// rank orders sensitivities for comparison.
func rank(s Sensitivity) int {
	switch s {
	case Public:
		return 0
	case Internal:
		return 1
	case Secret:
		return 2
	default:
		return 3
	}
}

func (p ExportPolicy) scrubbed(key string) bool {
	lower := strings.ToLower(key)
	for _, frag := range p.ScrubKeys {
		if strings.Contains(lower, strings.ToLower(frag)) {
			return true
		}
	}
	return false
}

// Apply filters one record under the policy. ok is false when the record is
// excluded entirely (e.g. a failure under a successes-only policy).
func (p ExportPolicy) Apply(r Record) (Record, bool) {
	if !p.IncludeFailures && (r.Status == StatusFailed || r.Status == StatusKilled) {
		return Record{}, false
	}
	out := r
	out.Annotations = nil
	for _, a := range r.Annotations {
		if a.Sensitivity == Secret {
			continue
		}
		if rank(a.Sensitivity) > rank(p.MaxSensitivity) {
			continue
		}
		if p.scrubbed(a.Key) {
			continue
		}
		out.Annotations = append(out.Annotations, a)
	}
	if p.IncludeEnvironment {
		out.Environment = map[string]string{}
		for k, v := range r.Environment {
			if !p.scrubbed(k) {
				out.Environment[k] = v
			}
		}
	} else {
		out.Environment = nil
	}
	return out, true
}

// Export filters a whole campaign's records into a shareable research
// object: the filtered records plus a manifest of what was withheld, so the
// receiving side knows the object's completeness.
type ResearchObject struct {
	CampaignID string   `json:"campaign_id"`
	Records    []Record `json:"records"`
	// Withheld counts records excluded entirely, and fields/annotations
	// stripped, keyed by reason.
	Withheld map[string]int `json:"withheld"`
}

// Export builds a ResearchObject for campaignID from the store under the
// policy.
func Export(s *Store, campaignID string, p ExportPolicy) (ResearchObject, error) {
	recs := s.Select(Query{CampaignID: campaignID})
	if len(recs) == 0 {
		return ResearchObject{}, fmt.Errorf("provenance: campaign %q has no records", campaignID)
	}
	ro := ResearchObject{CampaignID: campaignID, Withheld: map[string]int{}}
	for _, r := range recs {
		filtered, ok := p.Apply(r)
		if !ok {
			ro.Withheld["record:"+string(r.Status)]++
			continue
		}
		ro.Withheld["annotations"] += len(r.Annotations) - len(filtered.Annotations)
		if len(r.Environment) > 0 && len(filtered.Environment) == 0 {
			ro.Withheld["environment"]++
		}
		ro.Records = append(ro.Records, filtered)
	}
	sort.Slice(ro.Records, func(i, j int) bool { return ro.Records[i].ID < ro.Records[j].ID })
	return ro, nil
}
