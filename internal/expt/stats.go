package expt

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	Median float64
	P25    float64
	P75    float64
}

// Summarize computes descriptive statistics over xs. It returns the zero
// Summary for an empty slice.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P25 = Quantile(sorted, 0.25)
	s.P75 = Quantile(sorted, 0.75)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted sample
// using linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It panics if the slices differ in length and returns 0 when either sample
// has zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("expt: Pearson requires equal-length samples")
	}
	n := float64(len(xs))
	if n == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
