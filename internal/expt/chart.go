package expt

import (
	"fmt"
	"math"
	"strings"
)

// ASCIIChart renders a figure's series as a fixed-grid terminal chart:
// series are plotted with distinct glyphs over a width×height character
// canvas with simple axis annotations. It exists so cmd/experiments output
// is visually comparable to the paper's figures without leaving the
// terminal.
func (f *Figure) ASCIIChart(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}

	// Bounds across all series.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range f.Series {
		for i := range s.X {
			points++
			if s.X[i] < minX {
				minX = s.X[i]
			}
			if s.X[i] > maxX {
				maxX = s.X[i]
			}
			if s.Y[i] < minY {
				minY = s.Y[i]
			}
			if s.Y[i] > maxY {
				maxY = s.Y[i]
			}
		}
	}
	if points == 0 {
		return fmt.Sprintf("%s — %s (no data)\n", f.ID, f.Title)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = g
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	yLabelTop := fmt.Sprintf("%.4g", maxY)
	yLabelBot := fmt.Sprintf("%.4g", minY)
	pad := len(yLabelTop)
	if len(yLabelBot) > pad {
		pad = len(yLabelBot)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", pad)
		if r == 0 {
			label = fmt.Sprintf("%*s", pad, yLabelTop)
		}
		if r == height-1 {
			label = fmt.Sprintf("%*s", pad, yLabelBot)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, row)
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", pad), width/2, minX, width-width/2, maxX)
	fmt.Fprintf(&b, "%s  x: %s, y: %s\n", strings.Repeat(" ", pad), f.XLabel, f.YLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", pad), glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}
