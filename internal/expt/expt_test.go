package expt

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSplitSeedIndependence(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := SplitSeed(7, i)
		if seen[s] {
			t.Fatalf("duplicate child seed at index %d", i)
		}
		seen[s] = true
	}
	if SplitSeed(7, 0) == SplitSeed(8, 0) {
		t.Fatal("different parents produced identical children")
	}
}

func TestSplitSeedDeterministic(t *testing.T) {
	if SplitSeed(123, 45) != SplitSeed(123, 45) {
		t.Fatal("SplitSeed is not a pure function")
	}
}

func TestLogNormalPositive(t *testing.T) {
	rng := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := LogNormal(rng, 0, 1); v <= 0 {
			t.Fatalf("log-normal draw %v not positive", v)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	rng := NewRNG(2)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = LogNormal(rng, 2.0, 0.5)
	}
	s := Summarize(xs)
	want := math.Exp(2.0)
	if math.Abs(s.Median-want)/want > 0.05 {
		t.Fatalf("log-normal median %.3f, want ≈ %.3f", s.Median, want)
	}
}

func TestParetoBounds(t *testing.T) {
	rng := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := Pareto(rng, 2.0, 1.5); v < 2.0 {
			t.Fatalf("pareto draw %v below scale", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	rng := NewRNG(4)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = Exponential(rng, 10)
	}
	if m := Mean(xs); math.Abs(m-10) > 0.3 {
		t.Fatalf("exponential mean %.3f, want ≈ 10", m)
	}
}

func TestClampedNormalRespectsBounds(t *testing.T) {
	rng := NewRNG(5)
	for i := 0; i < 2000; i++ {
		v := ClampedNormal(rng, 0, 10, -1, 1)
		if v < -1 || v > 1 {
			t.Fatalf("clamped draw %v escaped [-1,1]", v)
		}
	}
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev %v, want sqrt(2.5)", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("empty summary N = %d", s.N)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if q := Quantile(sorted, 0.5); q != 5 {
		t.Fatalf("median of {0,10} = %v, want 5", q)
	}
	if q := Quantile(sorted, 0); q != 0 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(sorted, 1); q != 10 {
		t.Fatalf("q1 = %v", q)
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) < 2 {
			return true
		}
		sorted := append([]float64(nil), xs...)
		sortFloats(sorted)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(sorted, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %v, want 1", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := Pearson(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	if r := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Fatalf("r = %v, want 0 for zero-variance sample", r)
	}
}

func TestTableMarkdownAndCSV(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow(1, 2.5)
	tb.AddRow("x,y", `q"u`)
	md := tb.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| 1 | 2.5 |") {
		t.Fatalf("bad markdown:\n%s", md)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y","q""u"`) {
		t.Fatalf("bad csv quoting:\n%s", csv)
	}
}

func TestFigureMarkdownUnionsX(t *testing.T) {
	f := NewFigure("Fig. T", "test", "x", "y")
	s1 := f.AddSeries("one")
	s1.Add(1, 10)
	s1.Add(2, 20)
	s2 := f.AddSeries("two")
	s2.Add(2, 200)
	s2.Add(3, 300)
	md := f.Markdown()
	for _, want := range []string{"Fig. T", "one", "two", "| 1 | 10 |  |", "| 3 |  | 300 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestASCIIChartRendersAllSeries(t *testing.T) {
	f := NewFigure("Fig. T", "chart test", "time", "value")
	a := f.AddSeries("rising")
	b := f.AddSeries("falling")
	for i := 0; i < 10; i++ {
		a.Add(float64(i), float64(i))
		b.Add(float64(i), float64(9-i))
	}
	out := f.ASCIIChart(40, 10)
	for _, want := range []string{"Fig. T", "rising", "falling", "*", "o", "x: time, y: value"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 14 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
}

func TestASCIIChartDegenerate(t *testing.T) {
	empty := NewFigure("F", "empty", "x", "y")
	if !strings.Contains(empty.ASCIIChart(30, 8), "no data") {
		t.Fatal("empty chart not flagged")
	}
	flat := NewFigure("F", "flat", "x", "y")
	s := flat.AddSeries("s")
	s.Add(1, 5)
	s.Add(2, 5) // zero y-range must not divide by zero
	if out := flat.ASCIIChart(30, 8); !strings.Contains(out, "*") {
		t.Fatalf("flat series not plotted:\n%s", out)
	}
	single := NewFigure("F", "single", "x", "y")
	p := single.AddSeries("p")
	p.Add(3, 3) // single point, zero ranges in both axes
	if out := single.ASCIIChart(30, 8); !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}
