// Package expt provides shared experiment-harness utilities: seeded random
// number helpers, result tables and series, and emitters that render results
// as markdown or CSV. Every experiment in this repository is deterministic
// given its seed; the helpers here are how that determinism is threaded
// through workload generators and simulators.
package expt

import (
	"math"
	"math/rand"
)

// NewRNG returns a rand.Rand seeded deterministically from seed. All
// experiment code receives its randomness through an explicit *rand.Rand so
// that runs are reproducible and independent streams can be split by seed.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SplitSeed derives a child seed from a parent seed and an index using a
// SplitMix64 step. Child streams are statistically independent of the parent
// and of each other, which lets a campaign hand each of thousands of runs its
// own reproducible stream.
func SplitSeed(parent int64, index int) int64 {
	z := uint64(parent) + uint64(index+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// LogNormal draws from a log-normal distribution parameterised by the mean
// and standard deviation of the underlying normal. Heavy-tailed task
// runtimes — the straggler behaviour at the heart of the iRF-LOOP
// experiment — are modelled with this.
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(rng.NormFloat64()*sigma + mu)
}

// Pareto draws from a Pareto distribution with scale xm > 0 and shape
// alpha > 0. Used for filesystem-load burst modelling.
func Pareto(rng *rand.Rand, xm, alpha float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Exponential draws from an exponential distribution with the given mean.
// Mean-time-to-failure sampling in the cluster simulator uses this.
func Exponential(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// ClampedNormal draws from a normal distribution with the given mean and
// standard deviation, clamped to [lo, hi].
func ClampedNormal(rng *rand.Rand, mean, stddev, lo, hi float64) float64 {
	v := rng.NormFloat64()*stddev + mean
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}
