package expt

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a simple column-ordered result table used by the experiment
// harness to collect the rows a paper figure reports and render them as
// markdown or CSV.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Values are formatted with %v; float64 values are
// rendered with 4 significant digits to keep tables readable.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		padded := make([]string, len(t.Columns))
		copy(padded, row)
		b.WriteString("| " + strings.Join(padded, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (fields containing commas or
// quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRec := func(fields []string) {
		for i, f := range fields {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(f, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(f, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(f)
			}
		}
		b.WriteByte('\n')
	}
	writeRec(t.Columns)
	for _, row := range t.Rows {
		writeRec(row)
	}
	return b.String()
}

// Series is a named (x, y) series, the unit in which figure data is
// collected (one series per line/bar group in a paper figure).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point to the series.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a set of series plus axis labels — the exact data a plotted
// paper figure contains, rendered textually.
type Figure struct {
	ID     string // e.g. "Fig. 3"
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates a figure with the given identity and axis labels.
func NewFigure(id, title, xlabel, ylabel string) *Figure {
	return &Figure{ID: id, Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries creates, registers and returns a new named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Markdown renders the figure's data as a markdown table with one x column
// and one column per series. X values are unioned across series; missing
// points render blank.
func (f *Figure) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", f.ID, f.Title)
	fmt.Fprintf(&b, "x = %s, y = %s\n\n", f.XLabel, f.YLabel)

	xset := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xset[x] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	t := NewTable("", cols...)
	for _, x := range xs {
		row := make([]any, 0, len(cols))
		row = append(row, x)
		for _, s := range f.Series {
			v := ""
			for i, sx := range s.X {
				if sx == x {
					v = fmt.Sprintf("%.4g", s.Y[i])
					break
				}
			}
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	b.WriteString(t.Markdown())
	return b.String()
}
