package resilience

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- Replay edge cases the failover path depends on ---

func TestReplayDuplicateTerminalRecordsLastStatusWins(t *testing.T) {
	// A spool replay racing a re-dispatch can journal two terminal records
	// for one run (the coordinator's latch makes the second a duplicate,
	// but a torn handover can still interleave them). Replay must keep the
	// last status, deterministically.
	recs := []AttemptRecord{
		{Run: "r1", Attempt: 1, Event: AttemptSuccess, Time: stamp(1)},
		{Run: "r1", Attempt: 2, Event: AttemptFailure, Time: stamp(2)},
		{Run: "r2", Attempt: 1, Event: AttemptFailure, Time: stamp(3)},
		{Run: "r2", Attempt: 2, Event: AttemptSuccess, Time: stamp(4)},
		{Run: "r3", Attempt: 1, Event: AttemptSuccess, Time: stamp(5)},
		{Run: "r3", Attempt: 1, Event: AttemptSuccess, Time: stamp(6)}, // exact duplicate
	}
	st := Replay(recs)
	if st.Done["r1"] || !st.Failed["r1"] {
		t.Errorf("r1: want failed (last status), got done=%v failed=%v", st.Done["r1"], st.Failed["r1"])
	}
	if !st.Done["r2"] || st.Failed["r2"] {
		t.Errorf("r2: want done (last status), got done=%v failed=%v", st.Done["r2"], st.Failed["r2"])
	}
	if !st.Done["r3"] {
		t.Errorf("r3: duplicate success records must still replay done")
	}
	if got := st.Remaining([]string{"r1", "r2", "r3"}); len(got) != 1 || got[0] != "r1" {
		t.Errorf("Remaining = %v, want [r1]", got)
	}
}

func TestReplayTornTailMidHandover(t *testing.T) {
	// A coordinator killed mid-append leaves a torn final line. The
	// successor must replay everything before it and OpenJournal must
	// repair the tail so the successor's first append starts clean.
	path := filepath.Join(t.TempDir(), "attempts.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(AttemptRecord{Run: "r1", Attempt: 1, Event: AttemptDispatched, Worker: "w1", Time: stamp(1)})
	j.Append(AttemptRecord{Run: "r1", Attempt: 1, Event: AttemptSuccess, Worker: "w1", Time: stamp(2)})
	j.Append(AttemptRecord{Run: "r2", Attempt: 1, Event: AttemptDispatched, Worker: "w1", Time: stamp(3)})
	j.Close()
	// kill -9 mid-append: a half-written record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"run":"r3","attempt":1,"event":"succ`)
	f.Close()

	recs, err := ReadJournalFile(path)
	if err != nil {
		t.Fatalf("torn tail must decode: %v", err)
	}
	st := Replay(recs)
	if !st.Done["r1"] {
		t.Error("r1 success before the torn tail lost")
	}
	if st.Done["r2"] || st.Done["r3"] {
		t.Error("dispatched/torn runs must stay owed")
	}
	// Handover: the successor opens, fences a new epoch, keeps appending.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	epoch, err := j2.OpenEpoch("successor")
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("first epoch = %d, want 1", epoch)
	}
	j2.Append(AttemptRecord{Run: "r2", Attempt: 1, Event: AttemptSuccess, Worker: "w2", Time: stamp(5)})
	recs, err = ReadJournalFile(path)
	if err != nil {
		t.Fatalf("journal after handover must decode cleanly: %v", err)
	}
	st = Replay(recs)
	if !st.Done["r1"] || !st.Done["r2"] {
		t.Errorf("after handover want r1,r2 done; got done=%v", st.Done)
	}
	if st.Epoch != 1 {
		t.Errorf("replayed epoch = %d, want 1", st.Epoch)
	}
}

func TestReplayLeaseRecordsForWorkersThatNeverRejoined(t *testing.T) {
	// Lease and epoch pseudo-records must never surface as runnable work,
	// even for workers that died and never came back.
	recs := []AttemptRecord{
		{Run: EpochRunID, Event: EpochOpened, Epoch: 3, Worker: "coord-a", Time: stamp(1)},
		{Run: LeaseRunID("w1"), Attempt: 1, Event: LeaseGranted, Worker: "w1", Time: stamp(2)},
		{Run: LeaseRunID("w2"), Attempt: 2, Event: LeaseGranted, Worker: "w2", Time: stamp(3)},
		{Run: "r1", Attempt: 1, Event: AttemptDispatched, Worker: "w1", Time: stamp(4)},
		{Run: LeaseRunID("w1"), Attempt: 1, Event: LeaseExpired, Worker: "w1", Time: stamp(5)},
		{Run: "r1", Attempt: 1, Event: AttemptLost, Worker: "w1", Time: stamp(6)},
		{Run: "r1", Attempt: 1, Event: AttemptSuccess, Worker: "w2", Time: stamp(7)},
		// w2's lease is never released: the coordinator died first.
	}
	st := Replay(recs)
	if st.Epoch != 3 {
		t.Errorf("epoch = %d, want 3", st.Epoch)
	}
	ids := []string{"r1", "r2"}
	if got := st.Remaining(ids); len(got) != 1 || got[0] != "r2" {
		t.Errorf("Remaining = %v, want [r2]", got)
	}
	for id := range st.Done {
		if strings.HasPrefix(id, "worker/") || id == EpochRunID {
			t.Errorf("pseudo id %q leaked into Done", id)
		}
	}
	if st.Done[LeaseRunID("w2")] || st.Failed[LeaseRunID("w2")] {
		t.Error("never-rejoined worker's lease records must stay pending")
	}
}

func TestReplayStolenRunsStayOwed(t *testing.T) {
	recs := []AttemptRecord{
		{Run: "r1", Attempt: 0, Event: AttemptDispatched, Worker: "w1", Time: stamp(1)},
		{Run: "r1", Attempt: 0, Event: AttemptStolen, Worker: "w1", Time: stamp(2)},
	}
	st := Replay(recs)
	if got := st.Remaining([]string{"r1"}); len(got) != 1 {
		t.Errorf("stolen-but-not-redispatched run must stay owed; Remaining = %v", got)
	}
}

// --- Compact vs concurrent Append (satellite 1) ---

func TestJournalCompactUnderConcurrentAppends(t *testing.T) {
	// One goroutine appends a unique terminal record per run while the
	// main goroutine compacts repeatedly. Every appended record must
	// survive: it lands either before a compaction snapshot (kept as the
	// run's last record) or after the reopen (kept verbatim) — the append
	// lock held across temp+rename leaves no third place to fall into.
	path := filepath.Join(t.TempDir(), "attempts.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := j.Append(AttemptRecord{
				Run: fmt.Sprintf("run-%04d", i), Attempt: 1,
				Event: AttemptSuccess, Time: stamp(i),
			}); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		if err := j.Compact(); err != nil {
			t.Fatalf("compact %d: %v", i, err)
		}
	}
	wg.Wait()
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range recs {
		seen[r.Run] = true
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("run-%04d", i)
		if !seen[id] {
			t.Fatalf("record %s lost across compaction (have %d of %d)", id, len(seen), n)
		}
	}
}

func TestJournalCompactFailureKeepsHandleUsable(t *testing.T) {
	// If the rewrite fails mid-Compact (here: the journal's directory made
	// read-only so the temp file cannot be created), the journal must come
	// back with a usable append handle — many callers ignore Append errors,
	// so a silently-closed handle would eat history.
	if os.Geteuid() == 0 {
		t.Skip("directory permissions do not bind as root")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "attempts.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Append(AttemptRecord{Run: "r1", Attempt: 1, Event: AttemptSuccess, Time: stamp(1)})
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if err := j.Compact(); err == nil {
		t.Fatal("compact with a read-only directory should fail")
	}
	os.Chmod(dir, 0o755)
	if err := j.Append(AttemptRecord{Run: "r2", Attempt: 1, Event: AttemptSuccess, Time: stamp(2)}); err != nil {
		t.Fatalf("append after failed compact: %v", err)
	}
	j.Sync()
	recs, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st := Replay(recs)
	if !st.Done["r1"] || !st.Done["r2"] {
		t.Errorf("want r1 and r2 durable after failed compact; done=%v", st.Done)
	}
}

// --- Epoch fencing and batched fsync ---

func TestJournalOpenEpochMonotonic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "attempts.jsonl")
	for want := int64(1); want <= 3; want++ {
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		epoch, err := j.OpenEpoch(fmt.Sprintf("coord-%d", want))
		if err != nil {
			t.Fatal(err)
		}
		if epoch != want {
			t.Fatalf("incarnation %d fenced at epoch %d", want, epoch)
		}
		j.Close()
	}
	recs, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if st := Replay(recs); st.Epoch != 3 {
		t.Errorf("replayed epoch = %d, want 3", st.Epoch)
	}
}

func TestJournalFenceStopsWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "attempts.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Append(AttemptRecord{Run: "r1", Attempt: 1, Event: AttemptSuccess, Time: stamp(1)})
	j.Fence()
	if err := j.Append(AttemptRecord{Run: "r2", Attempt: 1, Event: AttemptSuccess, Time: stamp(2)}); err != ErrJournalFenced {
		t.Fatalf("append after fence: %v, want ErrJournalFenced", err)
	}
	if err := j.Compact(); err != ErrJournalFenced {
		t.Fatalf("compact after fence: %v, want ErrJournalFenced", err)
	}
	recs, _ := ReadJournalFile(path)
	if len(recs) != 1 {
		t.Fatalf("fenced journal grew: %d records", len(recs))
	}
}

func TestJournalAutoSyncCounts(t *testing.T) {
	// Behavioural check only (fsync is invisible to a reader): every
	// record must still be present and decodable with batching armed.
	path := filepath.Join(t.TempDir(), "attempts.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SetAutoSync(8)
	for i := 0; i < 50; i++ {
		if err := j.Append(AttemptRecord{Run: fmt.Sprintf("r%d", i), Attempt: 1, Event: AttemptSuccess, Time: stamp(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 50 {
		t.Fatalf("decoded %d records, want 50", len(recs))
	}
}

// --- Coordinator lease file ---

func TestFileLeaseAcquireRenewRelease(t *testing.T) {
	path := filepath.Join(t.TempDir(), "attempts.jsonl.lease")
	l, err := AcquireFileLease(path, "coord-a", 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AcquireFileLease(path, "coord-b", 200*time.Millisecond); err == nil {
		t.Fatal("second holder acquired a live lease")
	}
	if err := l.Renew(); err != nil {
		t.Fatalf("renew: %v", err)
	}
	st, ok, err := ReadFileLease(path)
	if err != nil || !ok {
		t.Fatalf("read lease: ok=%v err=%v", ok, err)
	}
	if st.Holder != "coord-a" {
		t.Errorf("holder = %q", st.Holder)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := ReadFileLease(path); ok {
		t.Fatal("lease file survives release")
	}
	if _, err := AcquireFileLease(path, "coord-b", 200*time.Millisecond); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestFileLeaseTakeoverFencesOldHolder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "attempts.jsonl.lease")
	now := time.Unix(1000, 0)
	a, err := acquireFileLease(path, "coord-a", 100*time.Millisecond, func() time.Time { return now })
	if err != nil {
		t.Fatal(err)
	}
	// Time passes beyond A's claim; B takes over.
	later := now.Add(time.Second)
	b, err := acquireFileLease(path, "coord-b", 100*time.Millisecond, func() time.Time { return later })
	if err != nil {
		t.Fatalf("takeover of a stale claim: %v", err)
	}
	// A's next renewal must discover the takeover, not re-stamp the claim.
	if err := a.Renew(); err == nil {
		t.Fatal("deposed holder renewed over its successor")
	}
	// And A's release must not delete B's claim.
	if err := a.Release(); err != nil {
		t.Fatal(err)
	}
	st, ok, _ := ReadFileLease(path)
	if !ok || st.Holder != "coord-b" {
		t.Fatalf("successor's claim damaged: ok=%v holder=%q", ok, st.Holder)
	}
	_ = b
}

func TestWaitFileLeaseStale(t *testing.T) {
	path := filepath.Join(t.TempDir(), "attempts.jsonl.lease")
	l, err := AcquireFileLease(path, "coord-a", 80*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	_ = l
	// Holder stops renewing: the standby's wait should return shortly
	// after the TTL lapses.
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := resilienceWaitStale(ctx, path, 80*time.Millisecond, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e < 40*time.Millisecond {
		t.Errorf("standby took over after %v — before the claim could lapse", e)
	}
	// Missing file: stale only after a full TTL of observation.
	missing := filepath.Join(t.TempDir(), "never.lease")
	start = time.Now()
	if err := resilienceWaitStale(ctx, missing, 60*time.Millisecond, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e < 50*time.Millisecond {
		t.Errorf("missing lease treated stale after only %v", e)
	}
	// Cancellation propagates.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	l2, _ := AcquireFileLease(filepath.Join(t.TempDir(), "x.lease"), "h", time.Hour)
	if err := resilienceWaitStale(cctx, l2.path, time.Hour, 10*time.Millisecond); err == nil {
		t.Fatal("cancelled wait returned nil")
	}
}

// resilienceWaitStale aliases the exported helper (keeps call sites short).
var resilienceWaitStale = WaitFileLeaseStale
