// Package resilience is the fault-tolerance layer shared by both Savanna
// execution engines. A campaign on a real machine meets transient node
// faults, wedged processes, walltime expiry and the occasional parameter
// combination that can never succeed; the paper's reusability argument
// requires the campaign artifact to *survive* those, not restart from
// provenance archaeology. The package provides the four mechanisms the
// engines share:
//
//   - failure classification (transient / permanent / deadline-exceeded),
//     attached to errors by the executors via Mark* wrappers and read back
//     with Classify;
//   - a retry policy with exponential backoff and decorrelated jitter,
//     expressed as a pure delay computation so the local engine sleeps real
//     time while the simulated engine advances virtual time;
//   - a quarantine circuit breaker that side-lines sweep points failing
//     repeatedly, so one poisoned parameter combination cannot starve the
//     worker pool;
//   - a journaled attempt log whose replay reconstructs the in-flight /
//     remaining / quarantined sets after a killed process — the substrate of
//     "fairctl resume".
//
// A Controller bundles the mechanisms with campaign-level stop conditions
// (max failure fraction → graceful abort) and renders a CompletenessReport
// at the end, so a degraded sweep ends in an explicit accounting instead of
// a hang or an all-failed result set.
package resilience

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Class grades a run failure for the retry decision.
type Class string

// Failure classes.
const (
	// ClassTransient failures (node fault, flaky I/O, killed by a failing
	// node) are expected to succeed on re-execution; they are the class the
	// retry policy spends attempts on.
	ClassTransient Class = "transient"
	// ClassPermanent failures (bad parameters, missing binary, non-zero
	// application exit) will fail identically every time; retrying wastes
	// allocation.
	ClassPermanent Class = "permanent"
	// ClassDeadline marks a run that exceeded its per-run deadline. It is
	// terminal by default: a run that overran its walltime will overrun it
	// again under the same policy.
	ClassDeadline Class = "deadline"
)

// Retryable reports whether the class is worth another attempt.
func (c Class) Retryable() bool { return c == ClassTransient }

// classified wraps an error with its failure class. The message is left
// untouched — classification travels in the type, not the text.
type classified struct {
	err   error
	class Class
}

func (c *classified) Error() string { return c.err.Error() }
func (c *classified) Unwrap() error { return c.err }

// Mark attaches a failure class to err (nil stays nil).
func Mark(err error, class Class) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: class}
}

// MarkTransient classifies err as transient.
func MarkTransient(err error) error { return Mark(err, ClassTransient) }

// MarkPermanent classifies err as permanent.
func MarkPermanent(err error) error { return Mark(err, ClassPermanent) }

// MarkDeadline classifies err as deadline-exceeded.
func MarkDeadline(err error) error { return Mark(err, ClassDeadline) }

// Classify reads the failure class of err: an explicit Mark wins, a
// context.DeadlineExceeded anywhere in the chain is ClassDeadline, and an
// unmarked error defaults to ClassTransient — on an HPC system the
// overwhelmingly common unexplained failure is environmental, and the
// attempt cap bounds the cost of guessing wrong.
func Classify(err error) Class {
	if err == nil {
		return ""
	}
	var c *classified
	if errors.As(err, &c) {
		return c.class
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return ClassDeadline
	}
	return ClassTransient
}

// RetryPolicy bounds and paces re-execution of failed runs.
type RetryPolicy struct {
	// MaxAttempts is the total number of executions per run (first try
	// included). Values < 1 mean a single attempt.
	MaxAttempts int
	// BaseDelay is the first backoff delay (0 retries immediately).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 defaults to 64 × BaseDelay).
	MaxDelay time.Duration
}

// Attempts returns the effective attempt cap (≥ 1).
func (p RetryPolicy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff computes the next delay using decorrelated jitter: the next wait
// is drawn uniformly from [BaseDelay, 3 × previous wait], capped at
// MaxDelay. Pass 0 for the first retry. Decorrelation keeps a burst of
// simultaneous failures from re-converging into synchronized retry storms
// the way plain exponential backoff with full jitter can.
func (p RetryPolicy) Backoff(prev time.Duration, rng *rand.Rand) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		return 0
	}
	cap := p.MaxDelay
	if cap <= 0 {
		cap = 64 * base
	}
	hi := 3 * prev
	if hi < base {
		hi = base
	}
	d := base
	if span := hi - base; span > 0 {
		d = base + time.Duration(rng.Int63n(int64(span)+1))
	}
	if d > cap {
		d = cap
	}
	return d
}

// Sleeper pauses between attempts. The local engine uses a real timer; tests
// and simulations substitute their own so no test ever sleeps.
type Sleeper func(ctx context.Context, d time.Duration) error

// StdSleeper sleeps on a real timer, returning early (with the context's
// error) when ctx is cancelled.
func StdSleeper(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
