package resilience

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"fairflow/internal/cheetah"
)

// The coordinator lease file is the failover election primitive: one small
// JSON file next to the attempt journal naming the active coordinator and
// when its claim expires. The active incarnation renews it well inside the
// TTL; a warm standby polls it and takes over the campaign once the claim
// goes stale. Writes go through the atomic temp+rename path, so observers
// always read a whole claim — never a torn one.
//
// The file is an *election* mechanism, not the fence. Fencing is the
// journal epoch (OpenEpoch) plus the renewal check below: a coordinator
// whose renewal discovers another holder's claim knows it has been deposed
// and must stop journaling (Journal.Fence) and abort. Two coordinators can
// briefly both believe they hold the file (clock skew, paused process), but
// they cannot both hold the highest journal epoch.

// FileLeaseState is the on-disk claim.
type FileLeaseState struct {
	// Holder names the claiming coordinator incarnation.
	Holder string `json:"holder"`
	// Epoch is the journal epoch the holder fenced at (0 before OpenEpoch).
	Epoch int64 `json:"epoch,omitempty"`
	// ExpiresUnixNano is the claim deadline; a claim past it is stale and a
	// standby may take over.
	ExpiresUnixNano int64 `json:"expires"`
}

// Expired reports whether the claim is stale at now.
func (s FileLeaseState) Expired(now time.Time) bool {
	return now.UnixNano() >= s.ExpiresUnixNano
}

// ReadFileLease loads the claim at path. ok is false when no file exists
// (no coordinator has ever claimed the campaign).
func ReadFileLease(path string) (st FileLeaseState, ok bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return FileLeaseState{}, false, nil
	}
	if err != nil {
		return FileLeaseState{}, false, err
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return FileLeaseState{}, false, fmt.Errorf("resilience: bad lease file %s: %w", path, err)
	}
	return st, true, nil
}

// FileLease is one incarnation's live claim on a lease file.
type FileLease struct {
	path   string
	holder string
	ttl    time.Duration
	epoch  int64
	now    func() time.Time
}

// AcquireFileLease claims the lease file for holder, failing if a live
// claim by someone else exists. ttl is the claim duration per write; call
// Renew at a fraction of it (TTL/3 is the convention).
func AcquireFileLease(path, holder string, ttl time.Duration) (*FileLease, error) {
	return acquireFileLease(path, holder, ttl, time.Now)
}

func acquireFileLease(path, holder string, ttl time.Duration, now func() time.Time) (*FileLease, error) {
	if ttl <= 0 {
		ttl = 5 * time.Second
	}
	st, ok, err := ReadFileLease(path)
	if err != nil {
		return nil, err
	}
	if ok && st.Holder != holder && !st.Expired(now()) {
		return nil, fmt.Errorf("resilience: lease file %s held by %q until %s",
			path, st.Holder, time.Unix(0, st.ExpiresUnixNano).Format(time.RFC3339Nano))
	}
	l := &FileLease{path: path, holder: holder, ttl: ttl, now: now}
	if err := l.write(); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *FileLease) write() error {
	data, err := json.Marshal(FileLeaseState{
		Holder: l.holder, Epoch: l.epoch,
		ExpiresUnixNano: l.now().Add(l.ttl).UnixNano(),
	})
	if err != nil {
		return err
	}
	return cheetah.WriteFileAtomic(l.path, append(data, '\n'), 0o644)
}

// Holder returns the claim's holder name.
func (l *FileLease) Holder() string { return l.holder }

// SetEpoch records the journal epoch in subsequent claim writes, so
// observers (fairctl, a standby's logs) can see which epoch is active.
func (l *FileLease) SetEpoch(epoch int64) { l.epoch = epoch }

// Renew re-stamps the claim deadline — after verifying the claim is still
// ours. Finding another holder's claim means a standby decided we were
// dead and took over: the caller must fence its journal and abort, not
// fight back.
func (l *FileLease) Renew() error {
	st, ok, err := ReadFileLease(l.path)
	if err != nil {
		return err
	}
	if ok && st.Holder != l.holder {
		return fmt.Errorf("resilience: lease file %s taken over by %q", l.path, st.Holder)
	}
	if !ok {
		// Claim file deleted out from under us — treat like a takeover; a
		// clean Release by ourselves would have stopped the renew loop first.
		return fmt.Errorf("resilience: lease file %s disappeared", l.path)
	}
	return l.write()
}

// Release drops the claim if it is still ours (a deposed incarnation must
// not delete its successor's claim).
func (l *FileLease) Release() error {
	st, ok, err := ReadFileLease(l.path)
	if err != nil || !ok || st.Holder != l.holder {
		return err
	}
	return os.Remove(l.path)
}

// WaitFileLeaseStale blocks until the lease file's claim is stale — the
// standby's takeover trigger. A missing file counts as stale only after a
// full ttl of observation (covering the startup race where the standby
// polls before the primary's first claim lands). Returns ctx.Err() on
// cancellation.
func WaitFileLeaseStale(ctx context.Context, path string, ttl, poll time.Duration) error {
	if poll <= 0 {
		poll = ttl / 4
	}
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	var missingSince time.Time
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, ok, err := ReadFileLease(path)
		if err != nil {
			return err
		}
		now := time.Now()
		if !ok {
			if missingSince.IsZero() {
				missingSince = now
			} else if now.Sub(missingSince) >= ttl {
				return nil
			}
		} else {
			missingSince = time.Time{}
			if st.Expired(now) {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}
