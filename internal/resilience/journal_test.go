package resilience

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func stamp(sec int) time.Time { return time.Unix(int64(sec), 0).UTC() }

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "attempts.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []AttemptRecord{
		{Run: "g/s/run-0", Point: "i=0", Attempt: 1, Event: AttemptStart, Time: stamp(1)},
		{Run: "g/s/run-0", Point: "i=0", Attempt: 1, Event: AttemptFailure, Class: ClassTransient, Time: stamp(2), Err: "flaky"},
		{Run: "g/s/run-0", Point: "i=0", Attempt: 2, Event: AttemptStart, Time: stamp(3)},
		{Run: "g/s/run-0", Point: "i=0", Attempt: 2, Event: AttemptSuccess, Time: stamp(4)},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestDecodeJournalToleratesTornFinalLine(t *testing.T) {
	full, _ := json.Marshal(AttemptRecord{Run: "r1", Attempt: 1, Event: AttemptStart, Time: stamp(1)})
	data := append(append([]byte{}, full...), '\n')
	data = append(data, []byte(`{"run":"r2","attempt":1,"ev`)...) // torn mid-append
	recs, err := DecodeJournal(data)
	if err != nil {
		t.Fatalf("torn final line must be tolerated: %v", err)
	}
	if len(recs) != 1 || recs[0].Run != "r1" {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestDecodeJournalRejectsInteriorCorruption(t *testing.T) {
	full, _ := json.Marshal(AttemptRecord{Run: "r1", Attempt: 1, Event: AttemptStart, Time: stamp(1)})
	data := []byte("{broken}\n")
	data = append(data, full...)
	data = append(data, '\n')
	if _, err := DecodeJournal(data); err == nil {
		t.Fatal("interior corruption must error, not silently truncate history")
	}
}

func TestDecodeJournalSkipsBlankLines(t *testing.T) {
	full, _ := json.Marshal(AttemptRecord{Run: "r1", Attempt: 1, Event: AttemptSuccess, Time: stamp(1)})
	data := []byte("\n\n" + string(full) + "\n\n")
	recs, err := DecodeJournal(data)
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs = %v, err = %v", recs, err)
	}
}

func TestReadJournalFileMissingIsEmpty(t *testing.T) {
	recs, err := ReadJournalFile(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || recs != nil {
		t.Fatalf("missing journal: recs=%v err=%v", recs, err)
	}
}

func TestReplayReconstructsCampaignState(t *testing.T) {
	recs := []AttemptRecord{
		// done run
		{Run: "a", Attempt: 1, Event: AttemptStart},
		{Run: "a", Attempt: 1, Event: AttemptSuccess},
		// cached run
		{Run: "b", Attempt: 1, Event: AttemptCached},
		// failed-then-recovered run (done)
		{Run: "c", Attempt: 1, Event: AttemptStart},
		{Run: "c", Attempt: 1, Event: AttemptFailure, Class: ClassTransient},
		{Run: "c", Attempt: 2, Event: AttemptStart},
		{Run: "c", Attempt: 2, Event: AttemptSuccess},
		// in-flight at the crash
		{Run: "d", Attempt: 1, Event: AttemptStart},
		// terminally failed
		{Run: "e", Attempt: 3, Event: AttemptFailure, Class: ClassPermanent},
		// quarantined point
		{Run: "f", Point: "i=6", Attempt: 3, Event: AttemptQuarantined, Class: ClassTransient},
		// killed by infrastructure (stays pending)
		{Run: "g", Attempt: 1, Event: AttemptStart},
		{Run: "g", Attempt: 1, Event: AttemptKilled},
	}
	s := Replay(recs)
	if !s.Done["a"] || !s.Done["b"] || !s.Done["c"] {
		t.Fatalf("done set wrong: %v", s.Done)
	}
	if !s.InFlight["d"] {
		t.Fatal("crashed in-flight run not detected")
	}
	if !s.Failed["e"] || !s.Failed["f"] {
		t.Fatalf("failed set wrong: %v", s.Failed)
	}
	if !s.QuarantinedPoints["i=6"] {
		t.Fatal("quarantined point lost")
	}
	if s.Attempts["c"] != 2 || s.Attempts["e"] != 3 {
		t.Fatalf("attempt counts wrong: %v", s.Attempts)
	}
	all := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	rem := s.Remaining(all)
	want := "d,e,f,g,h"
	if got := strings.Join(rem, ","); got != want {
		t.Fatalf("remaining = %s, want %s", got, want)
	}
	if got := s.QuarantinedList(); len(got) != 1 || got[0] != "i=6" {
		t.Fatalf("QuarantinedList = %v", got)
	}
}

func TestJournalCompactKeepsTerminalState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "attempts.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(AttemptRecord{Run: "a", Attempt: 1, Event: AttemptStart, Time: stamp(1)})
	j.Append(AttemptRecord{Run: "a", Attempt: 1, Event: AttemptFailure, Class: ClassTransient, Time: stamp(2)})
	j.Append(AttemptRecord{Run: "a", Attempt: 2, Event: AttemptStart, Time: stamp(3)})
	j.Append(AttemptRecord{Run: "a", Attempt: 2, Event: AttemptSuccess, Time: stamp(4)})
	j.Append(AttemptRecord{Run: "b", Attempt: 1, Event: AttemptStart, Time: stamp(5)})
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	// The journal must stay appendable after compaction.
	j.Append(AttemptRecord{Run: "b", Attempt: 1, Event: AttemptSuccess, Time: stamp(6)})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("compacted journal has %d records, want 3", len(recs))
	}
	s := Replay(recs)
	if !s.Done["a"] || !s.Done["b"] {
		t.Fatalf("compaction lost terminal state: %v", s.Done)
	}
}

func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	if err := j.Append(AttemptRecord{Run: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Path() != "" {
		t.Fatal("nil journal path")
	}
}

// FuzzJournalDecode pins the decoder's crash-tolerance contract: arbitrary
// bytes never panic, and whatever decodes must re-encode to a journal that
// decodes to the same records (round-trip stability).
func FuzzJournalDecode(f *testing.F) {
	full, _ := json.Marshal(AttemptRecord{Run: "r", Point: "i=1", Attempt: 2, Event: AttemptFailure, Class: ClassTransient, Time: stamp(7), Err: "x"})
	f.Add(append(append([]byte{}, full...), '\n'))
	f.Add([]byte(""))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"run":"a","attempt":1,"event":"start"}` + "\n" + `{"run":"b","att`))
	f.Add([]byte("{broken}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeJournal(data)
		if err != nil {
			return
		}
		var buf []byte
		for _, r := range recs {
			if r.Run == "" {
				t.Fatal("decoder admitted a record without a run id")
			}
			line, merr := json.Marshal(r)
			if merr != nil {
				t.Fatalf("re-encoding decoded record: %v", merr)
			}
			buf = append(buf, line...)
			buf = append(buf, '\n')
		}
		again, err := DecodeJournal(buf)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d != %d", len(again), len(recs))
		}
	})
}

func TestJournalSurvivesProcessCrashSimulation(t *testing.T) {
	// Simulate a kill -9 mid-append: write a valid prefix plus a torn tail
	// directly, then resume through the normal read path.
	path := filepath.Join(t.TempDir(), "attempts.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(AttemptRecord{Run: "a", Attempt: 1, Event: AttemptSuccess, Time: stamp(1)})
	j.Append(AttemptRecord{Run: "b", Attempt: 1, Event: AttemptStart, Time: stamp(2)})
	j.Close() // the "crash" loses nothing already appended
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"run":"c","attempt":1,"eve`) // torn
	f.Close()

	recs, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := Replay(recs)
	if !s.Done["a"] || !s.InFlight["b"] {
		t.Fatalf("resume state wrong after torn write: done=%v inflight=%v", s.Done, s.InFlight)
	}
	// The resumed process appends to the same file.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if err := j2.Append(AttemptRecord{Run: "b", Attempt: 2, Event: AttemptSuccess, Time: stamp(3)}); err != nil {
		t.Fatal(err)
	}
}
