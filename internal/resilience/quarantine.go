package resilience

import (
	"sort"
	"sync"
)

// Quarantine is the circuit breaker that side-lines sweep points which keep
// failing: after Threshold consecutive failed attempts of the same point,
// the point is quarantined and Allow refuses further executions. One
// poisoned parameter combination then costs the campaign exactly Threshold
// attempts instead of soaking up the worker pool's retry budget forever.
//
// Keys are sweep-point identities (the engines derive them from the run's
// parameters). A nil *Quarantine disables the breaker: Allow always grants.
type Quarantine struct {
	threshold int

	mu     sync.Mutex
	consec map[string]int
	out    map[string]bool
}

// NewQuarantine builds a breaker that trips after threshold consecutive
// failures (threshold < 1 returns nil — quarantine off).
func NewQuarantine(threshold int) *Quarantine {
	if threshold < 1 {
		return nil
	}
	return &Quarantine{
		threshold: threshold,
		consec:    map[string]int{},
		out:       map[string]bool{},
	}
}

// Allow reports whether the point may execute.
func (q *Quarantine) Allow(key string) bool {
	if q == nil {
		return true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return !q.out[key]
}

// NoteFailure records one failed attempt and reports whether this failure
// tripped the breaker (true exactly once per quarantined point).
func (q *Quarantine) NoteFailure(key string) bool {
	if q == nil {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.out[key] {
		return false
	}
	q.consec[key]++
	if q.consec[key] >= q.threshold {
		q.out[key] = true
		return true
	}
	return false
}

// NoteSuccess resets the point's consecutive-failure count.
func (q *Quarantine) NoteSuccess(key string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	delete(q.consec, key)
	q.mu.Unlock()
}

// Quarantined reports whether the point is side-lined.
func (q *Quarantine) Quarantined(key string) bool {
	if q == nil {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.out[key]
}

// List returns the quarantined point keys, sorted.
func (q *Quarantine) List() []string {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	keys := make([]string, 0, len(q.out))
	for k := range q.out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Restore pre-quarantines the given points — used by resume to carry a
// previous process's quarantine decisions across the crash.
func (q *Quarantine) Restore(keys []string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	for _, k := range keys {
		q.out[k] = true
	}
	q.mu.Unlock()
}
