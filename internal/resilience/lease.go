package resilience

import (
	"sync"
	"time"
)

// Lease is one worker's admission to a campaign: the coordinator grants it,
// heartbeats renew it, and missing the TTL reclaims it — at which point
// every run dispatched under the lease re-enters the queue. Leases are the
// distributed half of the exactly-once contract: the attempt journal
// records grants, expiries and per-run dispatch/lost transitions, so a
// crash of either side replays to an unambiguous position.
type Lease struct {
	// ID is unique within the table's lifetime (monotonic).
	ID int64
	// Worker names the leaseholder.
	Worker string
	// Granted is when the lease was issued.
	Granted time.Time
	// Expires is the current deadline; Renew pushes it forward.
	Expires time.Time
}

// LeaseTable tracks the live leases of one campaign and journals their
// transitions. Safe for concurrent use.
type LeaseTable struct {
	ttl     time.Duration
	journal *Journal
	now     func() time.Time

	mu     sync.Mutex
	next   int64
	leases map[string]*Lease
}

// NewLeaseTable builds a table with the given TTL. journal may be nil
// (transitions go unrecorded); now may be nil (wall clock).
func NewLeaseTable(ttl time.Duration, journal *Journal, now func() time.Time) *LeaseTable {
	if now == nil {
		now = time.Now
	}
	return &LeaseTable{ttl: ttl, journal: journal, now: now, leases: map[string]*Lease{}}
}

// TTL returns the table's lease duration.
func (t *LeaseTable) TTL() time.Duration { return t.ttl }

// Grant issues (or re-issues) the worker's lease and journals it. A
// re-grant to a returning worker replaces the old lease under a fresh ID.
func (t *LeaseTable) Grant(worker string) Lease {
	t.mu.Lock()
	t.next++
	now := t.now()
	l := &Lease{ID: t.next, Worker: worker, Granted: now, Expires: now.Add(t.ttl)}
	t.leases[worker] = l
	lease := *l
	t.mu.Unlock()
	t.journal.Append(AttemptRecord{
		Run: LeaseRunID(worker), Event: LeaseGranted, Worker: worker,
		Attempt: int(lease.ID), Time: now,
	})
	return lease
}

// Renew extends the worker's lease from now (a heartbeat). It reports
// whether the worker still holds one — a heartbeat from a reclaimed lease
// returns false and the worker must rejoin.
func (t *LeaseTable) Renew(worker string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.leases[worker]
	if !ok {
		return false
	}
	l.Expires = t.now().Add(t.ttl)
	return true
}

// Expired returns the leases whose deadline has passed, without removing
// them; the caller reclaims each via Expire after requeueing its runs.
func (t *LeaseTable) Expired() []Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var out []Lease
	for _, l := range t.leases {
		if now.After(l.Expires) {
			out = append(out, *l)
		}
	}
	return out
}

// Expire reclaims the worker's lease (missed heartbeats or a dropped
// connection) and journals the expiry. False when no lease was held.
func (t *LeaseTable) Expire(worker string, reason string) bool {
	t.mu.Lock()
	_, ok := t.leases[worker]
	delete(t.leases, worker)
	t.mu.Unlock()
	if !ok {
		return false
	}
	t.journal.Append(AttemptRecord{
		Run: LeaseRunID(worker), Event: LeaseExpired, Worker: worker,
		Time: t.now(), Err: reason,
	})
	return true
}

// Release ends the worker's lease cleanly (drain handshake) and journals
// the departure.
func (t *LeaseTable) Release(worker string) {
	t.mu.Lock()
	_, ok := t.leases[worker]
	delete(t.leases, worker)
	t.mu.Unlock()
	if !ok {
		return
	}
	t.journal.Append(AttemptRecord{
		Run: LeaseRunID(worker), Event: LeaseReleased, Worker: worker, Time: t.now(),
	})
}

// Held reports the number of live leases.
func (t *LeaseTable) Held() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.leases)
}
