package resilience

import (
	"path/filepath"
	"testing"
	"time"
)

// fakeClock is a hand-advanced time source for lease-expiry tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }

func TestLeaseGrantRenewExpire(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	path := filepath.Join(t.TempDir(), "attempts.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	lt := NewLeaseTable(10*time.Second, j, clk.now)

	l := lt.Grant("w1")
	if l.Worker != "w1" || !l.Expires.Equal(clk.t.Add(10*time.Second)) {
		t.Fatalf("lease = %+v", l)
	}
	if lt.Held() != 1 {
		t.Fatalf("held = %d", lt.Held())
	}

	// Renew pushes the deadline; without it the lease expires.
	clk.t = clk.t.Add(8 * time.Second)
	if !lt.Renew("w1") {
		t.Fatal("renew of live lease failed")
	}
	clk.t = clk.t.Add(8 * time.Second)
	if got := lt.Expired(); len(got) != 0 {
		t.Fatalf("renewed lease reported expired: %+v", got)
	}
	clk.t = clk.t.Add(3 * time.Second)
	expired := lt.Expired()
	if len(expired) != 1 || expired[0].Worker != "w1" {
		t.Fatalf("expired = %+v", expired)
	}
	if !lt.Expire("w1", "missed heartbeats") {
		t.Fatal("expire of held lease returned false")
	}
	if lt.Renew("w1") {
		t.Fatal("renew of reclaimed lease succeeded")
	}
	if lt.Expire("w1", "again") {
		t.Fatal("double expire returned true")
	}

	// Re-grant issues a fresh lease id; clean release journals departure.
	l2 := lt.Grant("w1")
	if l2.ID == l.ID {
		t.Fatal("re-grant reused lease id")
	}
	lt.Release("w1")
	if lt.Held() != 0 {
		t.Fatalf("held after release = %d", lt.Held())
	}

	j.Sync()
	recs, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []string
	for _, r := range recs {
		if r.Run != LeaseRunID("w1") || r.Worker != "w1" {
			t.Fatalf("lease record misaddressed: %+v", r)
		}
		events = append(events, r.Event)
	}
	want := []string{LeaseGranted, LeaseExpired, LeaseGranted, LeaseReleased}
	if len(events) != len(want) {
		t.Fatalf("journaled events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("journaled events = %v, want %v", events, want)
		}
	}
}

// TestReplayDispatchedAndLostStayPending pins the exactly-once resume
// semantics of the remote events: a run journaled dispatched (or lost to a
// dead worker) with no terminal record is still owed, and lease records
// under pseudo run ids never surface in Remaining.
func TestReplayDispatchedAndLostStayPending(t *testing.T) {
	recs := []AttemptRecord{
		{Run: LeaseRunID("w1"), Event: LeaseGranted, Worker: "w1"},
		{Run: "a", Event: AttemptDispatched, Worker: "w1"},
		{Run: "b", Event: AttemptDispatched, Worker: "w1"},
		{Run: "b", Attempt: 1, Event: AttemptSuccess, Worker: "w1"},
		{Run: "c", Event: AttemptDispatched, Worker: "w1"},
		{Run: LeaseRunID("w1"), Event: LeaseExpired, Worker: "w1"},
		{Run: "c", Event: AttemptLost, Worker: "w1"},
	}
	st := Replay(recs)
	if st.Done["a"] || st.Done["c"] || !st.Done["b"] {
		t.Fatalf("done = %+v", st.Done)
	}
	if st.InFlight["a"] || st.Failed["a"] {
		t.Fatal("dispatched run must be pending, not in-flight or failed")
	}
	got := st.Remaining([]string{"a", "b", "c"})
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("remaining = %v", got)
	}
}

// TestLeaseRecordsSurviveJournalRoundTrip pins the Worker field through the
// JSONL encode/decode path.
func TestLeaseRecordsSurviveJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "attempts.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(AttemptRecord{Run: "r1", Event: AttemptDispatched, Worker: "w2", Time: time.Unix(5, 0)})
	j.Append(AttemptRecord{Run: "r1", Event: AttemptLost, Worker: "w2", Time: time.Unix(6, 0)})
	j.Close()
	recs, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Worker != "w2" || recs[1].Event != AttemptLost {
		t.Fatalf("recs = %+v", recs)
	}
}
