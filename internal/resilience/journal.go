package resilience

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"fairflow/internal/cheetah"
)

// Attempt journal events.
const (
	// AttemptStart is written before an execution begins; a start with no
	// matching terminal event marks a run that was in flight when the engine
	// process died.
	AttemptStart = "start"
	// AttemptSuccess ends a run: it executed and completed.
	AttemptSuccess = "success"
	// AttemptCached ends a run satisfied from the memo cache.
	AttemptCached = "cached"
	// AttemptFailure records one failed attempt (the run may retry).
	AttemptFailure = "failure"
	// AttemptKilled records an attempt cut off by infrastructure (node
	// failure, walltime); the run requeues without consuming its budget.
	AttemptKilled = "killed"
	// AttemptQuarantined marks the run's sweep point side-lined; the run is
	// terminal-failed and resume must not retry it.
	AttemptQuarantined = "quarantined"
	// AttemptSkipped marks a run never attempted because the campaign
	// aborted first.
	AttemptSkipped = "skipped"
	// AttemptDispatched records a run handed to a remote worker under a
	// lease. Dispatch is not execution: on replay the run is still owed, so
	// a coordinator crash between dispatch and the worker's result re-issues
	// the run — the exactly-once ledger spans both processes.
	AttemptDispatched = "dispatched"
	// AttemptLost records a dispatched run reclaimed from an expired worker
	// lease; like AttemptKilled it requeues without consuming the run's
	// attempt budget (the fault was the worker's, not the run's).
	AttemptLost = "lost"
)

// Lease journal events. Lease records share the attempt journal (they are
// part of the same exactly-once story) under the pseudo run id
// "worker/<name>", which Replay leaves pending and Remaining never matches.
const (
	// LeaseGranted marks a worker admitted to the campaign.
	LeaseGranted = "lease-granted"
	// LeaseExpired marks a lease reclaimed after missed heartbeats; every
	// run dispatched under it gets a paired AttemptLost record.
	LeaseExpired = "lease-expired"
	// LeaseReleased marks a clean worker departure (drain handshake).
	LeaseReleased = "lease-released"
)

// LeaseRunID renders the pseudo run id lease records journal under.
func LeaseRunID(worker string) string { return "worker/" + worker }

// AttemptRecord is one line of the attempt journal.
type AttemptRecord struct {
	Run     string    `json:"run"`
	Point   string    `json:"point,omitempty"` // sweep-point key (quarantine identity)
	Attempt int       `json:"attempt"`
	Event   string    `json:"event"`
	Class   Class     `json:"class,omitempty"`
	Time    time.Time `json:"time"`
	Err     string    `json:"err,omitempty"`
	// Worker names the leaseholder for dispatched/lost/lease-* records —
	// the remote execution plane's audit trail.
	Worker string `json:"worker,omitempty"`
}

// Journal is the append-only attempt log. Appends go through O_APPEND so a
// crash can lose at most the final, partially-written line — which the
// decoder tolerates — and never corrupts earlier records. Compact rewrites
// the file through the same atomic temp+rename path the cheetah campaign
// files use.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

// OpenJournal opens (creating if needed) the attempt journal at path. A
// torn final line left by a killed process is repaired first — completed if
// it parses, truncated away if it does not — so the resumed process's
// appends start on a clean line boundary instead of concatenating into the
// wreckage.
func OpenJournal(path string) (*Journal, error) {
	if err := repairTail(path); err != nil {
		return nil, fmt.Errorf("resilience: repairing journal tail: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resilience: opening journal: %w", err)
	}
	return &Journal{path: path, f: f}, nil
}

// repairTail fixes an unterminated final line: a parseable record gets its
// newline, garbage is truncated back to the last line boundary.
func repairTail(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) || err == nil && (len(data) == 0 || data[len(data)-1] == '\n') {
		return nil
	}
	if err != nil {
		return err
	}
	cut := bytes.LastIndexByte(data, '\n') + 1
	tail := data[cut:]
	var rec AttemptRecord
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if json.Unmarshal(tail, &rec) == nil && rec.Run != "" {
		_, err = f.WriteAt([]byte{'\n'}, int64(len(data)))
		return err
	}
	return f.Truncate(int64(cut))
}

// Path returns the journal's file path ("" for a nil journal).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Append journals one record. A nil journal swallows the write, so engines
// without a journal configured pay only a nil check.
func (j *Journal) Append(rec AttemptRecord) error {
	if j == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err = j.f.Write(line)
	return err
}

// Sync flushes the journal to stable storage.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// Close syncs and closes the journal.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// Compact rewrites the journal keeping one terminal record per finished run
// (dropping the attempt-by-attempt history), via the atomic temp+rename
// write path so a crash mid-compaction leaves the previous journal intact.
func (j *Journal) Compact() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	data, err := os.ReadFile(j.path)
	if err != nil {
		return err
	}
	recs, err := DecodeJournal(data)
	if err != nil {
		return err
	}
	last := map[string]AttemptRecord{}
	var order []string
	for _, r := range recs {
		if _, seen := last[r.Run]; !seen {
			order = append(order, r.Run)
		}
		last[r.Run] = r
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, run := range order {
		if err := enc.Encode(last[run]); err != nil {
			return err
		}
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	if err := cheetah.WriteFileAtomic(j.path, buf.Bytes(), 0o644); err != nil {
		return err
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f = f
	return nil
}

// DecodeJournal parses an attempt journal. A final line without a
// terminating newline that fails to parse is discarded — that is the torn
// write of a process killed mid-append. Any other malformed line is an
// error: the journal before it is real history that silent truncation would
// rewrite.
func DecodeJournal(data []byte) ([]AttemptRecord, error) {
	var out []AttemptRecord
	line := 0
	for len(data) > 0 {
		line++
		var row []byte
		i := bytes.IndexByte(data, '\n')
		terminated := i >= 0
		if terminated {
			row, data = data[:i], data[i+1:]
		} else {
			row, data = data, nil
		}
		if len(bytes.TrimSpace(row)) == 0 {
			continue
		}
		var rec AttemptRecord
		if err := json.Unmarshal(row, &rec); err != nil {
			if !terminated {
				break // torn final write: ignore
			}
			return nil, fmt.Errorf("resilience: journal line %d: %w", line, err)
		}
		if rec.Run == "" {
			if !terminated {
				break
			}
			return nil, fmt.Errorf("resilience: journal line %d: record missing run id", line)
		}
		out = append(out, rec)
	}
	return out, nil
}

// ReadJournalFile loads and decodes a journal; a missing file is an empty
// journal, not an error (first execution has nothing to resume).
func ReadJournalFile(path string) ([]AttemptRecord, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return DecodeJournal(data)
}

// ResumeState is the campaign position reconstructed from an attempt
// journal: which runs are finished, which were mid-flight at the crash,
// which failed their last attempt, and which sweep points are quarantined.
type ResumeState struct {
	// Attempts is the highest attempt number journaled per run.
	Attempts map[string]int
	// Done holds runs whose last event is terminal success (success/cached).
	Done map[string]bool
	// Failed holds runs whose last event is failure or quarantined.
	Failed map[string]bool
	// InFlight holds runs whose last event is a start — they were executing
	// when the process died and must be re-run.
	InFlight map[string]bool
	// QuarantinedPoints holds side-lined sweep-point keys.
	QuarantinedPoints map[string]bool
}

// Replay folds journal records (oldest first) into a ResumeState.
func Replay(recs []AttemptRecord) *ResumeState {
	s := &ResumeState{
		Attempts:          map[string]int{},
		Done:              map[string]bool{},
		Failed:            map[string]bool{},
		InFlight:          map[string]bool{},
		QuarantinedPoints: map[string]bool{},
	}
	for _, r := range recs {
		if r.Attempt > s.Attempts[r.Run] {
			s.Attempts[r.Run] = r.Attempt
		}
		delete(s.Done, r.Run)
		delete(s.Failed, r.Run)
		delete(s.InFlight, r.Run)
		switch r.Event {
		case AttemptStart:
			s.InFlight[r.Run] = true
		case AttemptSuccess, AttemptCached:
			s.Done[r.Run] = true
		case AttemptFailure, AttemptQuarantined:
			s.Failed[r.Run] = true
			if r.Event == AttemptQuarantined && r.Point != "" {
				s.QuarantinedPoints[r.Point] = true
			}
		case AttemptDispatched, AttemptLost:
			// Dispatched-but-unfinished and lease-reclaimed runs are owed:
			// resume re-dispatches them. (Lease records under "worker/<name>"
			// pseudo ids land here too and stay pending — Remaining filters
			// on real run ids, so they never resurface as work.)
		}
		// AttemptKilled and AttemptSkipped leave the run pending: both
		// requeue on resume.
	}
	return s
}

// Remaining filters runIDs to those not finished — the resume set, in the
// original order. Quarantined runs are still listed: whether to retry them
// is the engine's call (Quarantine.Restore carries the decision forward).
func (s *ResumeState) Remaining(runIDs []string) []string {
	var out []string
	for _, id := range runIDs {
		if s.Done[id] {
			continue
		}
		out = append(out, id)
	}
	return out
}

// QuarantinedList returns the quarantined point keys, sorted.
func (s *ResumeState) QuarantinedList() []string {
	keys := make([]string, 0, len(s.QuarantinedPoints))
	for k := range s.QuarantinedPoints {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
