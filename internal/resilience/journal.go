package resilience

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"fairflow/internal/cheetah"
)

// Attempt journal events.
const (
	// AttemptStart is written before an execution begins; a start with no
	// matching terminal event marks a run that was in flight when the engine
	// process died.
	AttemptStart = "start"
	// AttemptSuccess ends a run: it executed and completed.
	AttemptSuccess = "success"
	// AttemptCached ends a run satisfied from the memo cache.
	AttemptCached = "cached"
	// AttemptFailure records one failed attempt (the run may retry).
	AttemptFailure = "failure"
	// AttemptKilled records an attempt cut off by infrastructure (node
	// failure, walltime); the run requeues without consuming its budget.
	AttemptKilled = "killed"
	// AttemptQuarantined marks the run's sweep point side-lined; the run is
	// terminal-failed and resume must not retry it.
	AttemptQuarantined = "quarantined"
	// AttemptSkipped marks a run never attempted because the campaign
	// aborted first.
	AttemptSkipped = "skipped"
	// AttemptDispatched records a run handed to a remote worker under a
	// lease. Dispatch is not execution: on replay the run is still owed, so
	// a coordinator crash between dispatch and the worker's result re-issues
	// the run — the exactly-once ledger spans both processes.
	AttemptDispatched = "dispatched"
	// AttemptLost records a dispatched run reclaimed from an expired worker
	// lease; like AttemptKilled it requeues without consuming the run's
	// attempt budget (the fault was the worker's, not the run's).
	AttemptLost = "lost"
	// AttemptStolen records a dispatched run relinquished by its worker
	// under a steal request and requeued. Like AttemptLost it leaves the run
	// owed on replay: a coordinator that died between the steal and the next
	// dispatch still re-issues the run.
	AttemptStolen = "stolen"
)

// Lease journal events. Lease records share the attempt journal (they are
// part of the same exactly-once story) under the pseudo run id
// "worker/<name>", which Replay leaves pending and Remaining never matches.
const (
	// LeaseGranted marks a worker admitted to the campaign.
	LeaseGranted = "lease-granted"
	// LeaseExpired marks a lease reclaimed after missed heartbeats; every
	// run dispatched under it gets a paired AttemptLost record.
	LeaseExpired = "lease-expired"
	// LeaseReleased marks a clean worker departure (drain handshake).
	LeaseReleased = "lease-released"
)

// LeaseRunID renders the pseudo run id lease records journal under.
func LeaseRunID(worker string) string { return "worker/" + worker }

// EpochOpened marks a coordinator incarnation taking ownership of the
// journal. It is journaled under EpochRunID with Epoch set to the new fenced
// epoch and Worker naming the incarnation. Replay surfaces the highest epoch
// seen; a successor always opens at that value + 1, so epochs are strictly
// increasing across handovers and workers can reject traffic from any
// incarnation below the latest — the split-brain fence.
const EpochOpened = "epoch-opened"

// EpochRunID is the pseudo run id epoch records journal under. Like lease
// pseudo ids it stays pending on replay and never matches a real run.
const EpochRunID = "coordinator/epoch"

// AttemptRecord is one line of the attempt journal.
type AttemptRecord struct {
	Run     string    `json:"run"`
	Point   string    `json:"point,omitempty"` // sweep-point key (quarantine identity)
	Attempt int       `json:"attempt"`
	Event   string    `json:"event"`
	Class   Class     `json:"class,omitempty"`
	Time    time.Time `json:"time"`
	Err     string    `json:"err,omitempty"`
	// Worker names the leaseholder for dispatched/lost/lease-* records —
	// the remote execution plane's audit trail.
	Worker string `json:"worker,omitempty"`
	// Epoch is the coordinator incarnation that wrote the record (0 before
	// failover existed). Meaningful on epoch-opened records, where it carries
	// the newly fenced epoch.
	Epoch int64 `json:"epoch,omitempty"`
}

// Journal is the append-only attempt log. Appends go through O_APPEND so a
// crash can lose at most the final, partially-written line — which the
// decoder tolerates — and never corrupts earlier records. Compact rewrites
// the file through the same atomic temp+rename path the cheetah campaign
// files use.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	// autoSync > 0 arms the batched-fsync policy: every autoSync-th append
	// fsyncs inline, bounding how much accounting a power loss can take
	// without paying fsync latency on every record. unsynced counts appends
	// since the last flush.
	autoSync int
	unsynced int
	// fenced stops all further writes: a coordinator that lost its lease
	// must not keep journaling under a successor's epoch.
	fenced bool
}

// ErrJournalFenced is returned by Append once Fence has been called.
var ErrJournalFenced = fmt.Errorf("resilience: journal fenced")

// OpenJournal opens (creating if needed) the attempt journal at path. A
// torn final line left by a killed process is repaired first — completed if
// it parses, truncated away if it does not — so the resumed process's
// appends start on a clean line boundary instead of concatenating into the
// wreckage.
func OpenJournal(path string) (*Journal, error) {
	if err := repairTail(path); err != nil {
		return nil, fmt.Errorf("resilience: repairing journal tail: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resilience: opening journal: %w", err)
	}
	return &Journal{path: path, f: f}, nil
}

// repairTail fixes an unterminated final line: a parseable record gets its
// newline, garbage is truncated back to the last line boundary.
func repairTail(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) || err == nil && (len(data) == 0 || data[len(data)-1] == '\n') {
		return nil
	}
	if err != nil {
		return err
	}
	cut := bytes.LastIndexByte(data, '\n') + 1
	tail := data[cut:]
	var rec AttemptRecord
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if json.Unmarshal(tail, &rec) == nil && rec.Run != "" {
		_, err = f.WriteAt([]byte{'\n'}, int64(len(data)))
		return err
	}
	return f.Truncate(int64(cut))
}

// Path returns the journal's file path ("" for a nil journal).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Append journals one record. A nil journal swallows the write, so engines
// without a journal configured pay only a nil check. A fenced journal
// rejects the write: a deposed coordinator must not keep writing history
// under its successor's epoch.
func (j *Journal) Append(rec AttemptRecord) error {
	if j == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.fenced {
		return ErrJournalFenced
	}
	if _, err = j.f.Write(line); err != nil {
		return err
	}
	if j.autoSync > 0 {
		if j.unsynced++; j.unsynced >= j.autoSync {
			j.unsynced = 0
			return j.f.Sync()
		}
	}
	return nil
}

// SetAutoSync arms the batched-fsync policy: every n-th Append fsyncs
// inline. n <= 0 disables (explicit Sync/Close only — the default).
func (j *Journal) SetAutoSync(n int) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.autoSync = n
	j.mu.Unlock()
}

// Fence permanently stops writes to this handle (reads and Replay are
// unaffected — they go through the path). The file stays intact for the
// successor; this handle's Append returns ErrJournalFenced from now on.
func (j *Journal) Fence() {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.fenced = true
	j.f.Sync()
	j.mu.Unlock()
}

// Sync flushes the journal to stable storage.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.unsynced = 0
	return j.f.Sync()
}

// Close syncs and closes the journal.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// Compact rewrites the journal keeping one terminal record per finished run
// (dropping the attempt-by-attempt history), via the atomic temp+rename
// write path so a crash mid-compaction leaves the previous journal intact.
// The append lock is held across the whole read → rewrite → rename →
// reopen sequence, so records appended concurrently land either before the
// snapshot (and survive compacted) or after the reopen (and survive
// verbatim) — never in the gap.
func (j *Journal) Compact() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.fenced {
		return ErrJournalFenced
	}
	data, err := os.ReadFile(j.path)
	if err != nil {
		return err
	}
	recs, err := DecodeJournal(data)
	if err != nil {
		return err
	}
	last := map[string]AttemptRecord{}
	var order []string
	for _, r := range recs {
		if _, seen := last[r.Run]; !seen {
			order = append(order, r.Run)
		}
		last[r.Run] = r
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, run := range order {
		if err := enc.Encode(last[run]); err != nil {
			return err
		}
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	j.unsynced = 0
	// Past this point the old handle is gone: whatever happens, leave j.f
	// pointing at a usable append handle so later Appends (whose errors many
	// callers deliberately ignore) don't silently vanish into a closed file.
	werr := cheetah.WriteFileAtomic(j.path, buf.Bytes(), 0o644)
	f, oerr := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if oerr == nil {
		j.f = f
	}
	if werr != nil {
		return werr
	}
	return oerr
}

// OpenEpoch fences a new coordinator incarnation into the journal: it
// replays the file's current highest epoch, appends an epoch-opened record
// for that value + 1 (naming holder), fsyncs it, and returns the new epoch.
// The record is durable before the function returns — a successor racing us
// is guaranteed to open at a strictly higher epoch.
func (j *Journal) OpenEpoch(holder string) (int64, error) {
	if j == nil {
		return 0, nil
	}
	recs, err := ReadJournalFile(j.Path())
	if err != nil {
		return 0, err
	}
	epoch := Replay(recs).Epoch + 1
	if err := j.Append(AttemptRecord{
		Run: EpochRunID, Event: EpochOpened, Epoch: epoch,
		Worker: holder, Time: time.Now(),
	}); err != nil {
		return 0, err
	}
	if err := j.Sync(); err != nil {
		return 0, err
	}
	return epoch, nil
}

// DecodeJournal parses an attempt journal. A final line without a
// terminating newline that fails to parse is discarded — that is the torn
// write of a process killed mid-append. Any other malformed line is an
// error: the journal before it is real history that silent truncation would
// rewrite.
func DecodeJournal(data []byte) ([]AttemptRecord, error) {
	var out []AttemptRecord
	line := 0
	for len(data) > 0 {
		line++
		var row []byte
		i := bytes.IndexByte(data, '\n')
		terminated := i >= 0
		if terminated {
			row, data = data[:i], data[i+1:]
		} else {
			row, data = data, nil
		}
		if len(bytes.TrimSpace(row)) == 0 {
			continue
		}
		var rec AttemptRecord
		if err := json.Unmarshal(row, &rec); err != nil {
			if !terminated {
				break // torn final write: ignore
			}
			return nil, fmt.Errorf("resilience: journal line %d: %w", line, err)
		}
		if rec.Run == "" {
			if !terminated {
				break
			}
			return nil, fmt.Errorf("resilience: journal line %d: record missing run id", line)
		}
		out = append(out, rec)
	}
	return out, nil
}

// ReadJournalFile loads and decodes a journal; a missing file is an empty
// journal, not an error (first execution has nothing to resume).
func ReadJournalFile(path string) ([]AttemptRecord, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return DecodeJournal(data)
}

// ResumeState is the campaign position reconstructed from an attempt
// journal: which runs are finished, which were mid-flight at the crash,
// which failed their last attempt, and which sweep points are quarantined.
type ResumeState struct {
	// Attempts is the highest attempt number journaled per run.
	Attempts map[string]int
	// Done holds runs whose last event is terminal success (success/cached).
	Done map[string]bool
	// Failed holds runs whose last event is failure or quarantined.
	Failed map[string]bool
	// InFlight holds runs whose last event is a start — they were executing
	// when the process died and must be re-run.
	InFlight map[string]bool
	// QuarantinedPoints holds side-lined sweep-point keys.
	QuarantinedPoints map[string]bool
	// Epoch is the highest coordinator epoch journaled (0 when the journal
	// predates failover). A resuming coordinator opens at Epoch+1.
	Epoch int64
}

// Replay folds journal records (oldest first) into a ResumeState.
func Replay(recs []AttemptRecord) *ResumeState {
	s := &ResumeState{
		Attempts:          map[string]int{},
		Done:              map[string]bool{},
		Failed:            map[string]bool{},
		InFlight:          map[string]bool{},
		QuarantinedPoints: map[string]bool{},
	}
	for _, r := range recs {
		if r.Attempt > s.Attempts[r.Run] {
			s.Attempts[r.Run] = r.Attempt
		}
		delete(s.Done, r.Run)
		delete(s.Failed, r.Run)
		delete(s.InFlight, r.Run)
		switch r.Event {
		case AttemptStart:
			s.InFlight[r.Run] = true
		case AttemptSuccess, AttemptCached:
			s.Done[r.Run] = true
		case AttemptFailure, AttemptQuarantined:
			s.Failed[r.Run] = true
			if r.Event == AttemptQuarantined && r.Point != "" {
				s.QuarantinedPoints[r.Point] = true
			}
		case AttemptDispatched, AttemptLost, AttemptStolen:
			// Dispatched-but-unfinished, lease-reclaimed, and stolen-but-not-
			// redispatched runs are owed: resume re-dispatches them. (Lease
			// records under "worker/<name>" pseudo ids land here too and stay
			// pending — Remaining filters on real run ids, so they never
			// resurface as work.)
		case EpochOpened:
			if r.Epoch > s.Epoch {
				s.Epoch = r.Epoch
			}
		}
		// AttemptKilled and AttemptSkipped leave the run pending: both
		// requeue on resume.
	}
	return s
}

// Remaining filters runIDs to those not finished — the resume set, in the
// original order. Quarantined runs are still listed: whether to retry them
// is the engine's call (Quarantine.Restore carries the decision forward).
func (s *ResumeState) Remaining(runIDs []string) []string {
	var out []string
	for _, id := range runIDs {
		if s.Done[id] {
			continue
		}
		out = append(out, id)
	}
	return out
}

// QuarantinedList returns the quarantined point keys, sorted.
func (s *ResumeState) QuarantinedList() []string {
	keys := make([]string, 0, len(s.QuarantinedPoints))
	for k := range s.QuarantinedPoints {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
