package resilience

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"fairflow/internal/cheetah"
)

// StopPolicy is the campaign-level circuit breaker: when the fraction of
// terminally failed runs exceeds MaxFailureFraction, the campaign aborts
// gracefully — undispatched runs are reported skipped and the engine returns
// a completeness report instead of grinding through a doomed sweep.
type StopPolicy struct {
	// MaxFailureFraction in (0, 1]; 0 disables the breaker.
	MaxFailureFraction float64 `json:"max_failure_fraction,omitempty"`
	// MinCompleted is how many terminal outcomes must accumulate before the
	// fraction is trusted (default 5) — a sweep must not abort because its
	// very first run failed.
	MinCompleted int `json:"min_completed,omitempty"`
}

// Config assembles the resilience stack for one engine.
type Config struct {
	// Retry bounds and paces re-execution of transiently failed runs.
	Retry RetryPolicy
	// QuarantineAfter side-lines a sweep point after this many consecutive
	// failed attempts (0 disables quarantine).
	QuarantineAfter int
	// RunDeadline bounds each attempt (0 = no per-run deadline). Exceeding
	// it cancels the attempt's context and classifies the failure
	// ClassDeadline.
	RunDeadline time.Duration
	// Stop is the campaign-level abort condition.
	Stop StopPolicy
	// Journal, when non-nil, receives one record per attempt transition —
	// the crash-resume substrate.
	Journal *Journal
	// Sleep paces retries (nil → StdSleeper). The simulated engine ignores
	// it and schedules virtual-time events instead.
	Sleep Sleeper
	// Seed drives the backoff jitter (deterministic campaigns stay
	// deterministic).
	Seed int64
	// Restore pre-quarantines sweep points from a previous process's
	// journal — resume carries the crash-era quarantine decisions forward
	// instead of re-burning attempts on known-poisoned points. Ignored
	// when QuarantineAfter leaves the breaker disabled.
	Restore []string
	// Now stamps journal records (nil → time.Now). The simulated engine
	// points it at virtual time.
	Now func() time.Time
}

// Controller is one campaign's live resilience state: the quarantine
// breaker, the jitter stream, the outcome tally, and the abort latch. It is
// safe for concurrent use by the engine's workers.
type Controller struct {
	cfg Config
	q   *Quarantine

	mu          sync.Mutex
	rng         *rand.Rand
	succeeded   int
	cached      int
	failed      int
	quarantined int
	skipped     int
	retries     int
	aborted     bool
	reason      string
}

// NewController builds the runtime for one campaign execution.
func NewController(cfg Config) *Controller {
	q := NewQuarantine(cfg.QuarantineAfter)
	q.Restore(cfg.Restore)
	return &Controller{
		cfg: cfg,
		q:   q,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Attempts returns the per-run attempt cap.
func (c *Controller) Attempts() int { return c.cfg.Retry.Attempts() }

// RunDeadline returns the per-attempt deadline (0 = none).
func (c *Controller) RunDeadline() time.Duration { return c.cfg.RunDeadline }

// Quarantine exposes the campaign's breaker (nil when disabled).
func (c *Controller) Quarantine() *Quarantine { return c.q }

// Backoff draws the next retry delay from the policy's jitter stream.
func (c *Controller) Backoff(prev time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.Retry.Backoff(prev, c.rng)
}

// Sleep pauses between attempts using the configured sleeper.
func (c *Controller) Sleep(ctx context.Context, d time.Duration) error {
	if c.cfg.Sleep != nil {
		return c.cfg.Sleep(ctx, d)
	}
	return StdSleeper(ctx, d)
}

// now stamps a journal record.
func (c *Controller) now() time.Time {
	if c.cfg.Now != nil {
		return c.cfg.Now()
	}
	return time.Now()
}

// SetNow repoints the journal clock (the simulated engine drives it from
// virtual time).
func (c *Controller) SetNow(now func() time.Time) { c.cfg.Now = now }

// JournalAttempt appends one attempt transition to the journal (no-op
// without one configured).
func (c *Controller) JournalAttempt(run, point string, attempt int, event string, class Class, err error) {
	c.JournalAttemptWorker(run, point, attempt, event, "", class, err)
}

// JournalAttemptWorker is JournalAttempt with the leaseholder recorded —
// the remote coordinator's dispatch/lost/terminal transitions name the
// worker that held (or lost) the run.
func (c *Controller) JournalAttemptWorker(run, point string, attempt int, event, worker string, class Class, err error) {
	if c.cfg.Journal == nil {
		return
	}
	rec := AttemptRecord{
		Run: run, Point: point, Attempt: attempt,
		Event: event, Class: class, Time: c.now(), Worker: worker,
	}
	if err != nil {
		rec.Err = err.Error()
	}
	c.cfg.Journal.Append(rec)
}

// Journal exposes the configured attempt journal (nil when none) — the
// lease table shares it so leases and attempts form one ledger.
func (c *Controller) Journal() *Journal { return c.cfg.Journal }

// Outcome kinds for NoteOutcome.
const (
	OutcomeSucceeded   = "succeeded"
	OutcomeCached      = "cached"
	OutcomeFailed      = "failed"
	OutcomeQuarantined = "quarantined"
	OutcomeSkipped     = "skipped"
)

// NoteOutcome tallies one run's terminal outcome and evaluates the stop
// condition; it returns true when this outcome tripped the campaign abort
// (exactly once).
func (c *Controller) NoteOutcome(kind string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch kind {
	case OutcomeSucceeded:
		c.succeeded++
	case OutcomeCached:
		c.cached++
	case OutcomeFailed:
		c.failed++
	case OutcomeQuarantined:
		c.quarantined++
	case OutcomeSkipped:
		c.skipped++
	}
	if c.aborted || c.cfg.Stop.MaxFailureFraction <= 0 {
		return false
	}
	min := c.cfg.Stop.MinCompleted
	if min <= 0 {
		min = 5
	}
	terminal := c.succeeded + c.cached + c.failed + c.quarantined
	if terminal < min {
		return false
	}
	frac := float64(c.failed+c.quarantined) / float64(terminal)
	if frac > c.cfg.Stop.MaxFailureFraction {
		c.aborted = true
		c.reason = fmt.Sprintf("failure fraction %.2f exceeds %.2f after %d runs",
			frac, c.cfg.Stop.MaxFailureFraction, terminal)
		return true
	}
	return false
}

// NoteRetry counts one retry (for the report; the engines also export it as
// a metric).
func (c *Controller) NoteRetry() {
	c.mu.Lock()
	c.retries++
	c.mu.Unlock()
}

// Abort latches the campaign aborted with the given reason (first reason
// wins).
func (c *Controller) Abort(reason string) {
	c.mu.Lock()
	if !c.aborted {
		c.aborted = true
		c.reason = reason
	}
	c.mu.Unlock()
}

// Aborted reports the abort latch and its reason.
func (c *Controller) Aborted() (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reason, c.aborted
}

// CompletenessReport is the campaign's final accounting: every run ends in
// exactly one bucket, so a degraded sweep is an explicit artifact — the
// operator sees what completed, what was side-lined, and why the campaign
// stopped — rather than a hung process or an undifferentiated failure.
type CompletenessReport struct {
	Total       int      `json:"total"`
	Succeeded   int      `json:"succeeded"`
	Cached      int      `json:"cached"`
	Failed      int      `json:"failed"`
	Quarantined int      `json:"quarantined"`
	Skipped     int      `json:"skipped"`
	Retries     int      `json:"retries"`
	Aborted     bool     `json:"aborted"`
	Reason      string   `json:"reason,omitempty"`
	Points      []string `json:"quarantined_points,omitempty"`
}

// Complete reports whether every run finished successfully.
func (r CompletenessReport) Complete() bool {
	return !r.Aborted && r.Failed == 0 && r.Quarantined == 0 && r.Skipped == 0 &&
		r.Succeeded+r.Cached == r.Total
}

// String renders the one-line operator summary.
func (r CompletenessReport) String() string {
	s := fmt.Sprintf("%d/%d complete (%d executed, %d cached), %d failed, %d quarantined, %d skipped, %d retries",
		r.Succeeded+r.Cached, r.Total, r.Succeeded, r.Cached, r.Failed, r.Quarantined, r.Skipped, r.Retries)
	if r.Aborted {
		s += " — ABORTED: " + r.Reason
	}
	return s
}

// WriteFile writes the report as JSON through the atomic temp+rename path.
func (r CompletenessReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return cheetah.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// Report renders the controller's tally for a campaign of total runs.
func (c *Controller) Report(total int) CompletenessReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CompletenessReport{
		Total:       total,
		Succeeded:   c.succeeded,
		Cached:      c.cached,
		Failed:      c.failed,
		Quarantined: c.quarantined,
		Skipped:     c.skipped,
		Retries:     c.retries,
		Aborted:     c.aborted,
		Reason:      c.reason,
		Points:      c.q.List(),
	}
}
