package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	base := errors.New("boom")
	cases := []struct {
		err  error
		want Class
	}{
		{nil, Class("")},
		{base, ClassTransient}, // unmarked defaults transient
		{MarkTransient(base), ClassTransient},
		{MarkPermanent(base), ClassPermanent},
		{MarkDeadline(base), ClassDeadline},
		{fmt.Errorf("wrapped: %w", MarkPermanent(base)), ClassPermanent},
		{fmt.Errorf("run x: %w", context.DeadlineExceeded), ClassDeadline},
	}
	for i, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("case %d: Classify = %q, want %q", i, got, c.want)
		}
	}
	if !ClassTransient.Retryable() || ClassPermanent.Retryable() || ClassDeadline.Retryable() {
		t.Fatal("retryability table wrong")
	}
}

func TestMarkPreservesMessageAndChain(t *testing.T) {
	base := errors.New("original message")
	m := MarkPermanent(base)
	if m.Error() != "original message" {
		t.Fatalf("message polluted: %q", m.Error())
	}
	if !errors.Is(m, base) {
		t.Fatal("Mark broke the unwrap chain")
	}
	if Mark(nil, ClassPermanent) != nil {
		t.Fatal("Mark(nil) must stay nil")
	}
}

func TestBackoffDecorrelatedJitter(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Second, MaxDelay: 10 * time.Second}
	rng := rand.New(rand.NewSource(1))
	prev := time.Duration(0)
	for i := 0; i < 200; i++ {
		d := p.Backoff(prev, rng)
		if d < p.BaseDelay || d > p.MaxDelay {
			t.Fatalf("iter %d: delay %v outside [base, cap]", i, d)
		}
		hi := 3 * prev
		if hi < p.BaseDelay {
			hi = p.BaseDelay
		}
		if hi > p.MaxDelay {
			hi = p.MaxDelay
		}
		if d > hi {
			t.Fatalf("iter %d: delay %v exceeds decorrelated bound %v", i, d, hi)
		}
		prev = d
	}
}

func TestBackoffZeroBaseNeverSleeps(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3}
	rng := rand.New(rand.NewSource(1))
	if d := p.Backoff(0, rng); d != 0 {
		t.Fatalf("zero-base backoff = %v, want 0", d)
	}
}

func TestRetryPolicyAttemptsFloor(t *testing.T) {
	if (RetryPolicy{}).Attempts() != 1 {
		t.Fatal("zero policy must allow exactly one attempt")
	}
	if (RetryPolicy{MaxAttempts: 4}).Attempts() != 4 {
		t.Fatal("attempt cap not honoured")
	}
}

func TestQuarantineTripsAfterThreshold(t *testing.T) {
	q := NewQuarantine(3)
	key := "alpha=1"
	for i := 0; i < 2; i++ {
		if q.NoteFailure(key) {
			t.Fatalf("tripped after %d failures", i+1)
		}
		if !q.Allow(key) {
			t.Fatal("blocked before threshold")
		}
	}
	if !q.NoteFailure(key) {
		t.Fatal("third consecutive failure must trip the breaker")
	}
	if q.Allow(key) {
		t.Fatal("quarantined point still allowed")
	}
	if q.NoteFailure(key) {
		t.Fatal("trip must report true exactly once")
	}
	if got := q.List(); len(got) != 1 || got[0] != key {
		t.Fatalf("List = %v", got)
	}
}

func TestQuarantineSuccessResetsStreak(t *testing.T) {
	q := NewQuarantine(2)
	q.NoteFailure("p")
	q.NoteSuccess("p")
	if q.NoteFailure("p") {
		t.Fatal("success must reset the consecutive count")
	}
	if !q.NoteFailure("p") {
		t.Fatal("two fresh consecutive failures must trip")
	}
}

func TestQuarantineNilAndDisabled(t *testing.T) {
	var q *Quarantine
	if !q.Allow("x") || q.NoteFailure("x") || q.Quarantined("x") || q.List() != nil {
		t.Fatal("nil quarantine must be fully permissive")
	}
	q.NoteSuccess("x")
	q.Restore([]string{"x"})
	if NewQuarantine(0) != nil {
		t.Fatal("threshold 0 must disable quarantine")
	}
}

func TestQuarantineRestore(t *testing.T) {
	q := NewQuarantine(5)
	q.Restore([]string{"poisoned"})
	if q.Allow("poisoned") {
		t.Fatal("restored point must stay quarantined")
	}
	if !q.Allow("healthy") {
		t.Fatal("restore must not block other points")
	}
}

func TestControllerStopCondition(t *testing.T) {
	c := NewController(Config{
		Stop: StopPolicy{MaxFailureFraction: 0.5, MinCompleted: 4},
	})
	// 2 successes + 2 failures: fraction 0.5, not > 0.5 — no abort.
	c.NoteOutcome(OutcomeSucceeded)
	c.NoteOutcome(OutcomeSucceeded)
	c.NoteOutcome(OutcomeFailed)
	if tripped := c.NoteOutcome(OutcomeFailed); tripped {
		t.Fatal("aborted at exactly the threshold")
	}
	// One more failure pushes the fraction over.
	if tripped := c.NoteOutcome(OutcomeFailed); !tripped {
		t.Fatal("failure fraction above threshold did not abort")
	}
	if tripped := c.NoteOutcome(OutcomeFailed); tripped {
		t.Fatal("abort must latch (report true once)")
	}
	reason, aborted := c.Aborted()
	if !aborted || reason == "" {
		t.Fatalf("aborted = %v, reason = %q", aborted, reason)
	}
	rep := c.Report(10)
	if !rep.Aborted || rep.Failed != 4 || rep.Succeeded != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Complete() {
		t.Fatal("aborted report cannot be complete")
	}
}

func TestControllerMinCompletedGuards(t *testing.T) {
	c := NewController(Config{Stop: StopPolicy{MaxFailureFraction: 0.1, MinCompleted: 5}})
	for i := 0; i < 4; i++ {
		if c.NoteOutcome(OutcomeFailed) {
			t.Fatal("aborted before MinCompleted terminal outcomes")
		}
	}
	if !c.NoteOutcome(OutcomeFailed) {
		t.Fatal("fifth terminal failure should abort")
	}
}

func TestCompletenessReportComplete(t *testing.T) {
	r := CompletenessReport{Total: 4, Succeeded: 3, Cached: 1}
	if !r.Complete() {
		t.Fatal("fully succeeded report must be complete")
	}
	r.Failed = 1
	if r.Complete() {
		t.Fatal("failed run must break completeness")
	}
	if r.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestStdSleeperCancels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := StdSleeper(ctx, time.Hour); err == nil {
		t.Fatal("cancelled sleep must return the context error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled sleep blocked")
	}
}
