GO ?= go

.PHONY: all build vet test race short bench bench-json experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One quick pass over every benchmark, rendered machine-readable so CI can
# publish it and successive PRs can diff the numbers.
bench-json:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=1x ./... | $(GO) run ./cmd/benchjson -o BENCH_PR3.json

# Regenerate every paper figure at full scale into results.md.
experiments:
	$(GO) run ./cmd/experiments -scale full -o results.md

# Run all seven end-to-end examples.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/gwas-paste
	$(GO) run ./examples/checkpoint-policy
	$(GO) run ./examples/streaming-steering
	$(GO) run ./examples/irf-loop-census
	$(GO) run ./examples/codesign-campaign
	$(GO) run ./examples/insitu-monitor

clean:
	rm -f results.md test_output.txt bench_output.txt BENCH_PR3.json
