GO ?= go

.PHONY: all build vet test race short bench bench-json bench-gate experiments examples clean

# Benchmarks the gate re-runs (see bench-gate). CASIngest and
# GWASPasteWorkflow are in the run set but not the diff set: their absolute
# wall-clock is disk-bound (object fsyncs, real input/output files) and
# drifts 2-3× with device state, which no tolerance can absorb — CASIngest
# is gated by its machine-independent same-run ratio instead, and the
# workflow's paste cost is gated through the CPU-bound PasteColumnar pair.
# Both still land in BENCH_PR6.json for the record.
GATE_BENCH = GWASPasteWorkflow|CASIngest|SimReplay|PasteColumnar|HashFile|RemoteCampaignScaling|SelfTelemetryOverhead
GATE_DIFF  = SimReplay|PasteColumnar|HashFile
# Allowed fractional slowdown before the gate fails (0.25 = 25%).
BENCH_TOLERANCE ?= 0.25

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Three passes over every benchmark, rendered machine-readable so CI can
# publish it and successive PRs can diff the numbers. The committed copy is
# the regression baseline bench-gate diffs against; benchdiff keeps the
# minimum of the three repetitions, which drops cold-cache first runs.
bench-json:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=1x -count=3 ./... | $(GO) run ./cmd/benchjson -o BENCH_PR7.json

# Re-run the gated benchmarks and fail if any slowed >$(BENCH_TOLERANCE)
# against the committed baseline. The gate takes the minimum of 5
# repetitions against the baseline's minimum of 3: comparing minima (not
# means) discards scheduler and page-cache bad luck, and giving the
# current side more draws than the baseline biases the comparison against
# false alarms — a real regression shifts every draw, so it still trips. The -ratio assertions are
# machine-independent: both sides come from the same run on the same
# hardware, so they pin the speedups the data-plane fast paths exist to
# provide on any machine. Margins leave room for run-to-run variance while
# still tripping when a fast path stops being one: CAS parallel ingest
# measures ~0.35-0.7× sequential (wide because object fsyncs inherit
# device scheduling noise), the columnar fast path ~0.55-0.65× the line
# kernel. Step and StepBatch share the cohort heap, so their gap is small
# (~0.8-1.0×); that ratio is a gross-breakage tripwire, while the absolute
# diff above is what holds the replay ceiling itself. The history sampler
# pair measures ~1.0-1.1× (sampling barely dents the hot path); its 1.5×
# ceiling trips if registry snapshots ever start contending with writers.
bench-gate:
	$(GO) test -run=NONE -bench='$(GATE_BENCH)' -benchmem -benchtime=1x -count=5 ./... | $(GO) run ./cmd/benchjson -o BENCH_GATE.json
	$(GO) run ./cmd/benchdiff -baseline BENCH_PR6.json -current BENCH_GATE.json \
		-tolerance $(BENCH_TOLERANCE) -filter '$(GATE_DIFF)' \
		-ratio 'BenchmarkCASIngest/parallel4<=0.85*BenchmarkCASIngest/sequential' \
		-ratio 'BenchmarkSimReplay/batch<=1.1*BenchmarkSimReplay/step' \
		-ratio 'BenchmarkPasteColumnar/fast<=0.85*BenchmarkPasteColumnar/kernel' \
		-ratio 'BenchmarkRemoteCampaignScaling/workers4<=0.4*BenchmarkRemoteCampaignScaling/workers1' \
		-ratio 'BenchmarkSelfTelemetryOverhead/sampling-on<=1.5*BenchmarkSelfTelemetryOverhead/sampling-off'

# Regenerate every paper figure at full scale into results.md.
experiments:
	$(GO) run ./cmd/experiments -scale full -o results.md

# Run all seven end-to-end examples.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/gwas-paste
	$(GO) run ./examples/checkpoint-policy
	$(GO) run ./examples/streaming-steering
	$(GO) run ./examples/irf-loop-census
	$(GO) run ./examples/codesign-campaign
	$(GO) run ./examples/insitu-monitor

clean:
	rm -f results.md test_output.txt bench_output.txt BENCH_GATE.json
