// Package fairflow is a from-scratch Go reproduction of "Reusability First:
// Toward FAIR Workflows" (IEEE CLUSTER 2021): the six-gauge reusability
// metadata model, the Skel model-driven generator, the Cheetah campaign
// composer, the Savanna execution engine, and every substrate the paper's
// four experiments depend on. See README.md for the tour and DESIGN.md for
// the system inventory; the library lives under internal/, the executables
// under cmd/, and runnable examples under examples/.
package fairflow
